//! Durable checkpoint/resume: versioned dumps of the level-synchronous
//! search state (DESIGN.md §13).
//!
//! At every level boundary the search frontier is a complete description
//! of the remaining work: the surviving candidates of the next level, the
//! per-branch check allowances already spent, the quarantine set, and the
//! results accumulated so far. [`SearchSnapshot`] captures exactly that
//! state plus enough metadata to refuse a wrong resume — a format version,
//! a manifest hash of the input relation
//! ([`ocdd_relation::manifest::manifest_hash`]), and the semantic
//! configuration fingerprint ([`SnapshotConfig`]).
//!
//! Dumps are written atomically (tmp + fsync + rename, via
//! [`ocdd_iosafe::atomic_write`]) under the [`CheckpointPolicy`] knob of
//! [`crate::DiscoveryConfig::checkpoint`], and resumed with
//! [`crate::search::discover_resume`], which replays the remaining levels
//! byte-identically to an uninterrupted run — across every level-
//! synchronous backend, because the per-branch allowance replay of the
//! speculative post-filter is itself deterministic.
//!
//! The serialization is hand-rolled JSON with a matching minimal parser
//! (this repository deliberately has no serde); all integers are unsigned
//! decimals, column references are ids over the *original* schema (stable
//! under resume because the manifest pins the schema), and object keys are
//! emitted in a fixed documented order so dumps of identical state are
//! byte-identical too.

use crate::config::DiscoveryConfig;
use crate::results::LevelStats;
use crate::runtime::TerminationReason;
use crate::shared_cache::CacheStats;
use ocdd_relation::sort::kernel_stats::KernelCounts;
use ocdd_relation::{manifest_hash, ColumnId, Relation};
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version tag of the dump format. Readers reject any other value — the
/// rejection rules are part of DESIGN.md §13.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic string identifying a dump file (`"format"` field).
pub const SNAPSHOT_MAGIC: &str = "ocdd-snapshot";

/// Checkpointing policy, installed via
/// [`crate::DiscoveryConfig::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory the dumps are written to (created on demand).
    pub dir: PathBuf,
    /// Write a dump every this many level boundaries (1 = every boundary;
    /// the initial boundary before level 2 is always written). Values of 0
    /// behave like 1.
    pub every_levels: usize,
    /// Retention: keep at most this many boundary dumps per run, deleting
    /// the oldest (0 = keep all). Final dumps are never GC'd.
    pub keep_last: usize,
    /// Delete this run's dumps once the search terminates with
    /// [`TerminationReason::Complete`] — a finished run needs no resume
    /// point, and long-running services must not leak dump files.
    pub delete_on_complete: bool,
    /// Record pruned candidates (checked, found invalid) in the dump so
    /// `ocdd dump-dot` can render per-node verdicts. Costs memory
    /// proportional to the pruned set; disable for huge searches.
    pub record_pruned: bool,
}

impl CheckpointPolicy {
    /// Policy with defaults: every boundary, keep the last 3 dumps,
    /// delete on completion, record pruned candidates.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every_levels: 1,
            keep_last: 3,
            delete_on_complete: true,
            record_pruned: true,
        }
    }
}

/// Checkpointing observability, reported in
/// [`crate::DiscoveryResult::checkpoint`] when a policy was installed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Dumps successfully written (boundary + final).
    pub snapshots_written: u64,
    /// Dump files deleted by retention or completion GC.
    pub files_deleted: u64,
    /// Dump writes that failed (the run continues; a checkpoint failure
    /// must never kill a search).
    pub write_errors: u64,
    /// Level number of the newest dump written.
    pub last_level: usize,
}

/// The semantic configuration fingerprint stored in a dump. Resuming under
/// a config whose fingerprint differs is rejected: these four knobs change
/// which candidates exist, their order, or their allowances — everything
/// else (checker backend, parallel mode, caches) is free to differ because
/// results are proven independent of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// `max_checks` of the original run (allowances derive from it).
    pub max_checks: Option<u64>,
    /// `max_level` of the original run.
    pub max_level: Option<usize>,
    /// Whether candidates were deduplicated within levels.
    pub dedup_candidates: bool,
    /// Whether column reduction preprocessing ran.
    pub column_reduction: bool,
}

impl SnapshotConfig {
    /// Extract the fingerprint from a run configuration.
    pub fn from_config(config: &DiscoveryConfig) -> SnapshotConfig {
        SnapshotConfig {
            max_checks: config.max_checks,
            max_level: config.max_level,
            dedup_candidates: config.dedup_candidates,
            column_reduction: config.column_reduction,
        }
    }

    /// First differing knob vs `other`, if any.
    fn mismatch(&self, other: &SnapshotConfig) -> Option<&'static str> {
        if self.max_checks != other.max_checks {
            Some("max_checks")
        } else if self.max_level != other.max_level {
            Some("max_level")
        } else if self.dedup_candidates != other.dedup_candidates {
            Some("dedup_candidates")
        } else if self.column_reduction != other.column_reduction {
            Some("column_reduction")
        } else {
            None
        }
    }
}

/// A pair of attribute lists (column ids) — a candidate, an OCD, or an OD
/// depending on context.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CandidatePair {
    /// Left list.
    pub x: Vec<ColumnId>,
    /// Right list.
    pub y: Vec<ColumnId>,
}

/// Per-branch allowance accounting at the dumped boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBranch {
    /// The level-2 branch (pair of first attributes, seed order).
    pub branch: (ColumnId, ColumnId),
    /// The branch's share of `max_checks` (`u64::MAX` when unlimited).
    pub allowance: u64,
    /// Checks the branch has spent so far.
    pub spent: u64,
    /// The branch stopped on its own allowance.
    pub stopped: bool,
    /// The branch was quarantined after a panic.
    pub failed: bool,
}

/// One quarantined branch with its panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFailure {
    /// The quarantined level-2 branch.
    pub branch: (ColumnId, ColumnId),
    /// Panic payload text.
    pub message: String,
}

/// Epoch-cache / shared-cache metadata of the dumped run (observability —
/// resume never needs it, since cache contents cannot change verdicts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheMeta {
    /// Whether the run shared one prefix cache across workers.
    pub shared: bool,
    /// Byte budget of the shared cache.
    pub budget_bytes: u64,
    /// Counter snapshot at the boundary.
    pub stats: CacheStats,
}

/// Sampling metadata of an approximate-pipeline dump (DESIGN.md §14).
///
/// A resume of an approximate run must rebuild *the same sample* the
/// original run triaged on — otherwise the resumed half of the lattice is
/// judged against different evidence and the combined result matches
/// neither run. [`crate::discover_approximate_resume`] therefore re-draws
/// the sample from this metadata and rejects on any mismatch
/// ([`SnapshotError::SampleMismatch`]), mirroring the manifest-hash check
/// on the parent relation.
///
/// Floats (`epsilon`, `confidence`) are stored as exact integer
/// micro-units because the dump parser deliberately accepts only unsigned
/// integers; OCD errors are stored as `(removals, rows)` rationals for the
/// same reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxMeta {
    /// Sampling seed of the run.
    pub seed: u64,
    /// Rows actually drawn into the sample.
    pub sample_rows: u64,
    /// Rows of the parent relation.
    pub total_rows: u64,
    /// Strategy label (`"uniform"` / `"stratified"`).
    pub strategy: String,
    /// Stratification column, when the strategy is stratified.
    pub strategy_column: Option<u64>,
    /// Manifest hash of the materialized sample relation.
    pub sample_manifest: u64,
    /// Tolerance ε in micro-units (`round(ε · 1e6)`).
    pub epsilon_micros: u64,
    /// Confidence level in micro-units (`round(confidence · 1e6)`).
    pub confidence_micros: u64,
    /// Per-OCD `(swap removals, rows)` error rationals, aligned with the
    /// dump's `ocds` array.
    pub ocd_errors: Vec<(u64, u64)>,
}

/// Convert a `[0, 1]` fraction to exact micro-units for a dump.
pub fn to_micros(fraction: f64) -> u64 {
    (fraction.clamp(0.0, 1.0) * 1_000_000.0).round() as u64
}

/// A versioned dump of the level-synchronous search state at one level
/// boundary. See the module docs for the durability and identity
/// guarantees; DESIGN.md §13 specifies the on-disk field layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Manifest hash of the input relation.
    pub manifest: u64,
    /// Semantic configuration fingerprint.
    pub config: SnapshotConfig,
    /// The next level to process (combined list length); the initial
    /// boundary dumps `level = 2` with the seed pairs as frontier.
    pub level: usize,
    /// Surviving candidates of the next level, in canonical level order
    /// (each carries its sort-key prefix as its `x` side).
    pub frontier: Vec<CandidatePair>,
    /// Per-branch allowance accounting, sorted by branch.
    pub branches: Vec<SnapshotBranch>,
    /// Quarantined branches so far.
    pub failures: Vec<SnapshotFailure>,
    /// Minimal OCDs accumulated so far (search emissions only).
    pub ocds: Vec<CandidatePair>,
    /// ODs accumulated so far (search emissions only; reduction facts are
    /// recomputed on resume).
    pub ods: Vec<CandidatePair>,
    /// Candidates generated so far (pre-dedup).
    pub generated: u64,
    /// Per-level stats accumulated so far.
    pub levels: Vec<LevelStats>,
    /// `max_level` already truncated a branch.
    pub level_capped: bool,
    /// A branch already ran out of its check allowance.
    pub check_budget_hit: bool,
    /// Budget checks counter at the boundary (reduction + absorbed).
    pub checks: u64,
    /// Wall-clock milliseconds spent up to the boundary (observability;
    /// resumed runs report cumulative elapsed time).
    pub elapsed_ms: u64,
    /// Sort/scan kernel counters at the boundary, so a resumed run's
    /// kernel totals match the uninterrupted run's.
    pub kernels: KernelCounts,
    /// Shared-cache metadata, when the run had a shared cache.
    pub cache: Option<CacheMeta>,
    /// Sampling metadata when the dump came from the approximate
    /// pipeline; `None` for exact-search dumps (and absent from their
    /// serialized form, keeping them byte-identical to pre-§14 dumps).
    pub approx: Option<ApproxMeta>,
    /// Candidates checked and found invalid (subtree pruned), recorded
    /// when [`CheckpointPolicy::record_pruned`] is on — the raw material
    /// of `ocdd dump-dot`'s per-node verdicts.
    pub pruned: Vec<CandidatePair>,
    /// Present only in a *final* dump of a run that stopped early: why it
    /// stopped. Boundary dumps of a live run carry `null`.
    pub termination: Option<TerminationReason>,
}

/// Why a dump could not be read, validated, or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem error (message text).
    Io(String),
    /// The file is not well-formed dump JSON.
    Parse(String),
    /// The `"format"` magic is wrong — not an ocdd dump at all.
    BadMagic(String),
    /// The dump's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the dump.
        found: u64,
        /// Version this build reads.
        supported: u32,
    },
    /// The dump was taken on a different input relation.
    ManifestMismatch {
        /// Manifest hash stored in the dump.
        snapshot: u64,
        /// Manifest hash of the relation offered for resume.
        relation: u64,
    },
    /// A semantic configuration knob differs between the dump and the
    /// resume config (named knob).
    ConfigMismatch(&'static str),
    /// An approximate-run dump's sampling metadata does not match the
    /// resume configuration (named field), or an exact/approximate
    /// resume was attempted on a dump of the other kind — the rebuilt
    /// sample would not be the one the run triaged on.
    SampleMismatch(&'static str),
    /// No dump file found (e.g. resuming from an empty directory).
    NoSnapshot(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot io error: {m}"),
            SnapshotError::Parse(m) => write!(f, "snapshot parse error: {m}"),
            SnapshotError::BadMagic(m) => {
                write!(f, "not an ocdd snapshot (format tag {m:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::ManifestMismatch { snapshot, relation } => write!(
                f,
                "manifest mismatch: snapshot was taken on relation {snapshot:016x}, \
                 resume input hashes to {relation:016x}"
            ),
            SnapshotError::ConfigMismatch(knob) => write!(
                f,
                "config mismatch: `{knob}` differs from the checkpointed run \
                 (results would diverge; rerun from scratch instead)"
            ),
            SnapshotError::SampleMismatch(field) => write!(
                f,
                "sample mismatch: `{field}` differs from the checkpointed \
                 approximate run (the resumed sample would not be the one \
                 the run triaged on; rerun from scratch instead)"
            ),
            SnapshotError::NoSnapshot(m) => write!(f, "no snapshot found: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SearchSnapshot {
    /// Validate this dump against a resume input and configuration:
    /// version tag, manifest hash, and semantic config fingerprint (the
    /// rejection rules of DESIGN.md §13).
    pub fn validate(&self, rel: &Relation, config: &DiscoveryConfig) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: u64::from(self.version),
                supported: SNAPSHOT_VERSION,
            });
        }
        let relation = manifest_hash(rel);
        if self.manifest != relation {
            return Err(SnapshotError::ManifestMismatch {
                snapshot: self.manifest,
                relation,
            });
        }
        let fp = SnapshotConfig::from_config(config);
        if let Some(knob) = self.config.mismatch(&fp) {
            return Err(SnapshotError::ConfigMismatch(knob));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Serialization (writer)
// ---------------------------------------------------------------------------

/// Escape a string for a JSON string literal (same rules as
/// [`crate::json`]).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn id_array(ids: &[ColumnId]) -> String {
    let parts: Vec<String> = ids.iter().map(|c| c.to_string()).collect();
    format!("[{}]", parts.join(","))
}

fn pair_array(pairs: &[CandidatePair]) -> String {
    let parts: Vec<String> = pairs
        .iter()
        .map(|p| format!("{{\"x\":{},\"y\":{}}}", id_array(&p.x), id_array(&p.y)))
        .collect();
    format!("[{}]", parts.join(","))
}

fn opt_u64_json(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Serialize a [`TerminationReason`] for a dump. Round-trips through
/// [`parse_termination_value`] for every variant, `WorkerFailure` payload
/// included.
fn termination_json(t: &TerminationReason) -> String {
    match t {
        TerminationReason::WorkerFailure { branches, message } => {
            let pairs: Vec<String> = branches
                .iter()
                .map(|&(a, b)| format!("[{a},{b}]"))
                .collect();
            format!(
                "{{\"kind\":\"worker_failure\",\"branches\":[{}],\"message\":\"{}\"}}",
                pairs.join(","),
                escape(message)
            )
        }
        other => format!("{{\"kind\":\"{}\"}}", other.label()),
    }
}

/// Serialize a dump to its canonical JSON text: fixed key order, unsigned
/// decimal integers, ids over the original schema. Identical snapshots
/// serialize byte-identically.
pub fn snapshot_to_json(snap: &SearchSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"format\":\"{SNAPSHOT_MAGIC}\",\"version\":{},\"manifest\":\"{:016x}\",",
        snap.version, snap.manifest
    );
    let _ = write!(
        out,
        "\"config\":{{\"max_checks\":{},\"max_level\":{},\"dedup_candidates\":{},\"column_reduction\":{}}},",
        opt_u64_json(snap.config.max_checks),
        opt_u64_json(snap.config.max_level.map(|l| l as u64)),
        snap.config.dedup_candidates,
        snap.config.column_reduction,
    );
    let _ = write!(out, "\"level\":{},", snap.level);
    let _ = write!(out, "\"frontier\":{},", pair_array(&snap.frontier));
    let branches: Vec<String> = snap
        .branches
        .iter()
        .map(|b| {
            format!(
                "{{\"x\":{},\"y\":{},\"allowance\":{},\"spent\":{},\"stopped\":{},\"failed\":{}}}",
                b.branch.0, b.branch.1, b.allowance, b.spent, b.stopped, b.failed
            )
        })
        .collect();
    let _ = write!(out, "\"branches\":[{}],", branches.join(","));
    let failures: Vec<String> = snap
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"x\":{},\"y\":{},\"message\":\"{}\"}}",
                f.branch.0,
                f.branch.1,
                escape(&f.message)
            )
        })
        .collect();
    let _ = write!(out, "\"failures\":[{}],", failures.join(","));
    let _ = write!(out, "\"ocds\":{},", pair_array(&snap.ocds));
    let _ = write!(out, "\"ods\":{},", pair_array(&snap.ods));
    let _ = write!(out, "\"generated\":{},", snap.generated);
    let levels: Vec<String> = snap
        .levels
        .iter()
        .map(|l| {
            format!(
                "{{\"level\":{},\"candidates\":{},\"valid_ocds\":{},\"valid_ods\":{}}}",
                l.level, l.candidates, l.valid_ocds, l.valid_ods
            )
        })
        .collect();
    let _ = write!(out, "\"levels\":[{}],", levels.join(","));
    let _ = write!(
        out,
        "\"level_capped\":{},\"check_budget_hit\":{},\"checks\":{},\"elapsed_ms\":{},",
        snap.level_capped, snap.check_budget_hit, snap.checks, snap.elapsed_ms
    );
    let k = &snap.kernels;
    let _ = write!(
        out,
        "\"kernels\":{{\"counting\":{},\"packed_radix\":{},\"chained_refine\":{},\"comparator\":{},\"scan_scalar\":{},\"scan_block\":{},\"scan_simd\":{}}},",
        k.counting, k.packed_radix, k.chained_refine, k.comparator, k.scan_scalar, k.scan_block, k.scan_simd,
    );
    match &snap.cache {
        None => out.push_str("\"cache\":null,"),
        Some(c) => {
            let _ = write!(
                out,
                "\"cache\":{{\"shared\":{},\"budget_bytes\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"resident_bytes\":{},\"entries\":{}}},",
                c.shared,
                c.budget_bytes,
                c.stats.hits,
                c.stats.misses,
                c.stats.evictions,
                c.stats.resident_bytes,
                c.stats.entries,
            );
        }
    }
    if let Some(a) = &snap.approx {
        let errs: Vec<String> = a
            .ocd_errors
            .iter()
            .map(|&(r, m)| format!("[{r},{m}]"))
            .collect();
        let _ = write!(
            out,
            "\"approx\":{{\"seed\":{},\"sample_rows\":{},\"total_rows\":{},\"strategy\":\"{}\",\"strategy_column\":{},\"sample_manifest\":\"{:016x}\",\"epsilon_micros\":{},\"confidence_micros\":{},\"ocd_errors\":[{}]}},",
            a.seed,
            a.sample_rows,
            a.total_rows,
            escape(&a.strategy),
            opt_u64_json(a.strategy_column),
            a.sample_manifest,
            a.epsilon_micros,
            a.confidence_micros,
            errs.join(","),
        );
    }
    let _ = write!(out, "\"pruned\":{},", pair_array(&snap.pruned));
    match &snap.termination {
        None => out.push_str("\"termination\":null}"),
        Some(t) => {
            let _ = write!(out, "\"termination\":{}}}", termination_json(t));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (reader)
// ---------------------------------------------------------------------------

/// Parsed JSON value. Numbers are unsigned 64-bit integers — the dump
/// format emits nothing else, and `u64` covers the `u64::MAX` allowance
/// sentinel that an `f64` would silently round.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn require(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", c as char))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        let bytes = lit.as_bytes();
        if self.b.get(self.i..self.i + bytes.len()) == Some(bytes) {
            self.i += bytes.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        let mut value: u64 = 0;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    let digit = u64::from(c - b'0');
                    value = match value.checked_mul(10).and_then(|v| v.checked_add(digit)) {
                        Some(v) => v,
                        None => return self.err("integer out of u64 range"),
                    };
                    self.i += 1;
                }
                b'.' | b'e' | b'E' | b'-' | b'+' => {
                    return self.err("only unsigned integers are valid in dumps")
                }
                _ => break,
            }
        }
        if self.i == start {
            return self.err("expected digit");
        }
        Ok(Json::Num(value))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(c) = self.bump() else {
                return self.err("truncated \\u escape");
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return self.err("bad hex digit in \\u escape"),
            };
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.i += 1;
            }
            if self.i > start {
                match std::str::from_utf8(self.b.get(start..self.i).unwrap_or_default()) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return self.err("invalid utf-8 in string"),
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate in \\u escape");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("bad low surrogate in \\u escape");
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(cp) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid code point in \\u escape"),
                        }
                    }
                    _ => return self.err("bad escape in string"),
                },
                _ => return self.err("unterminated string"),
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.require(b':')?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Json::Obj(fields)),
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::Arr(items)),
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return p.err("trailing data after JSON document");
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Field extraction
// ---------------------------------------------------------------------------

fn perr<T>(msg: String) -> Result<T, SnapshotError> {
    Err(SnapshotError::Parse(msg))
}

fn get<'v>(obj: &'v [(String, Json)], key: &str) -> Option<&'v Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req<'v>(obj: &'v [(String, Json)], key: &str) -> Result<&'v Json, SnapshotError> {
    get(obj, key).map_or_else(|| perr(format!("missing field `{key}`")), Ok)
}

fn as_obj<'v>(v: &'v Json, ctx: &str) -> Result<&'v [(String, Json)], SnapshotError> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => perr(format!("`{ctx}` must be an object")),
    }
}

fn as_arr<'v>(v: &'v Json, ctx: &str) -> Result<&'v [Json], SnapshotError> {
    match v {
        Json::Arr(items) => Ok(items),
        _ => perr(format!("`{ctx}` must be an array")),
    }
}

fn as_u64(v: &Json, ctx: &str) -> Result<u64, SnapshotError> {
    match v {
        Json::Num(n) => Ok(*n),
        _ => perr(format!("`{ctx}` must be an unsigned integer")),
    }
}

fn as_usize(v: &Json, ctx: &str) -> Result<usize, SnapshotError> {
    let n = as_u64(v, ctx)?;
    usize::try_from(n).map_or_else(|_| perr(format!("`{ctx}` out of usize range")), Ok)
}

fn as_bool(v: &Json, ctx: &str) -> Result<bool, SnapshotError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => perr(format!("`{ctx}` must be a boolean")),
    }
}

fn as_str<'v>(v: &'v Json, ctx: &str) -> Result<&'v str, SnapshotError> {
    match v {
        Json::Str(s) => Ok(s),
        _ => perr(format!("`{ctx}` must be a string")),
    }
}

fn opt_u64(v: &Json, ctx: &str) -> Result<Option<u64>, SnapshotError> {
    match v {
        Json::Null => Ok(None),
        other => as_u64(other, ctx).map(Some),
    }
}

fn id_list(v: &Json, ctx: &str) -> Result<Vec<ColumnId>, SnapshotError> {
    as_arr(v, ctx)?
        .iter()
        .map(|item| as_usize(item, ctx))
        .collect()
}

fn pair_list(v: &Json, ctx: &str) -> Result<Vec<CandidatePair>, SnapshotError> {
    as_arr(v, ctx)?
        .iter()
        .map(|item| {
            let obj = as_obj(item, ctx)?;
            Ok(CandidatePair {
                x: id_list(req(obj, "x")?, ctx)?,
                y: id_list(req(obj, "y")?, ctx)?,
            })
        })
        .collect()
}

/// Parse a serialized [`TerminationReason`] (the `"termination"` object).
fn parse_termination_value(v: &Json) -> Result<TerminationReason, SnapshotError> {
    let obj = as_obj(v, "termination")?;
    let kind = as_str(req(obj, "kind")?, "termination.kind")?;
    match kind {
        "complete" => Ok(TerminationReason::Complete),
        "level_cap" => Ok(TerminationReason::LevelCap),
        "check_budget" => Ok(TerminationReason::CheckBudget),
        "time_budget" => Ok(TerminationReason::TimeBudget),
        "cancelled" => Ok(TerminationReason::Cancelled),
        "worker_failure" => {
            let branches = as_arr(req(obj, "branches")?, "termination.branches")?
                .iter()
                .map(|pair| {
                    let ids = id_list(pair, "termination.branches")?;
                    match ids.as_slice() {
                        [a, b] => Ok((*a, *b)),
                        _ => perr("termination branch must be a pair".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            let message = as_str(req(obj, "message")?, "termination.message")?.to_string();
            Ok(TerminationReason::WorkerFailure { branches, message })
        }
        other => perr(format!("unknown termination kind `{other}`")),
    }
}

/// Parse dump JSON text into a [`SearchSnapshot`], enforcing the magic and
/// version rejection rules (manifest/config validation is separate — see
/// [`SearchSnapshot::validate`] — so tooling like `dump-dot` can read a
/// dump without the original input at hand).
pub fn parse_snapshot(text: &str) -> Result<SearchSnapshot, SnapshotError> {
    let root = parse_json(text).map_err(SnapshotError::Parse)?;
    let obj = as_obj(&root, "snapshot")?;

    let magic = as_str(req(obj, "format")?, "format")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic.to_string()));
    }
    let version = as_u64(req(obj, "version")?, "version")?;
    if version != u64::from(SNAPSHOT_VERSION) {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let manifest_text = as_str(req(obj, "manifest")?, "manifest")?;
    let manifest = u64::from_str_radix(manifest_text, 16)
        .map_err(|_| SnapshotError::Parse("`manifest` must be a hex string".to_string()))?;

    let cfg = as_obj(req(obj, "config")?, "config")?;
    let config = SnapshotConfig {
        max_checks: opt_u64(req(cfg, "max_checks")?, "config.max_checks")?,
        max_level: opt_u64(req(cfg, "max_level")?, "config.max_level")?
            .map(|l| usize::try_from(l).unwrap_or(usize::MAX)),
        dedup_candidates: as_bool(req(cfg, "dedup_candidates")?, "config.dedup_candidates")?,
        column_reduction: as_bool(req(cfg, "column_reduction")?, "config.column_reduction")?,
    };

    let branches = as_arr(req(obj, "branches")?, "branches")?
        .iter()
        .map(|item| {
            let b = as_obj(item, "branches")?;
            Ok(SnapshotBranch {
                branch: (
                    as_usize(req(b, "x")?, "branches.x")?,
                    as_usize(req(b, "y")?, "branches.y")?,
                ),
                allowance: as_u64(req(b, "allowance")?, "branches.allowance")?,
                spent: as_u64(req(b, "spent")?, "branches.spent")?,
                stopped: as_bool(req(b, "stopped")?, "branches.stopped")?,
                failed: as_bool(req(b, "failed")?, "branches.failed")?,
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;

    let failures = as_arr(req(obj, "failures")?, "failures")?
        .iter()
        .map(|item| {
            let f = as_obj(item, "failures")?;
            Ok(SnapshotFailure {
                branch: (
                    as_usize(req(f, "x")?, "failures.x")?,
                    as_usize(req(f, "y")?, "failures.y")?,
                ),
                message: as_str(req(f, "message")?, "failures.message")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;

    let levels = as_arr(req(obj, "levels")?, "levels")?
        .iter()
        .map(|item| {
            let l = as_obj(item, "levels")?;
            Ok(LevelStats {
                level: as_usize(req(l, "level")?, "levels.level")?,
                candidates: as_u64(req(l, "candidates")?, "levels.candidates")?,
                valid_ocds: as_u64(req(l, "valid_ocds")?, "levels.valid_ocds")?,
                valid_ods: as_u64(req(l, "valid_ods")?, "levels.valid_ods")?,
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;

    let k = as_obj(req(obj, "kernels")?, "kernels")?;
    let kernels = KernelCounts {
        counting: as_u64(req(k, "counting")?, "kernels.counting")?,
        packed_radix: as_u64(req(k, "packed_radix")?, "kernels.packed_radix")?,
        chained_refine: as_u64(req(k, "chained_refine")?, "kernels.chained_refine")?,
        comparator: as_u64(req(k, "comparator")?, "kernels.comparator")?,
        scan_scalar: as_u64(req(k, "scan_scalar")?, "kernels.scan_scalar")?,
        scan_block: as_u64(req(k, "scan_block")?, "kernels.scan_block")?,
        scan_simd: as_u64(req(k, "scan_simd")?, "kernels.scan_simd")?,
    };

    let cache = match req(obj, "cache")? {
        Json::Null => None,
        v => {
            let c = as_obj(v, "cache")?;
            Some(CacheMeta {
                shared: as_bool(req(c, "shared")?, "cache.shared")?,
                budget_bytes: as_u64(req(c, "budget_bytes")?, "cache.budget_bytes")?,
                stats: CacheStats {
                    hits: as_u64(req(c, "hits")?, "cache.hits")?,
                    misses: as_u64(req(c, "misses")?, "cache.misses")?,
                    evictions: as_u64(req(c, "evictions")?, "cache.evictions")?,
                    resident_bytes: as_u64(req(c, "resident_bytes")?, "cache.resident_bytes")?,
                    entries: as_u64(req(c, "entries")?, "cache.entries")?,
                },
            })
        }
    };

    let termination = match req(obj, "termination")? {
        Json::Null => None,
        v => Some(parse_termination_value(v)?),
    };

    // Optional: absent (pre-§14 dump or exact-search dump) means `None`.
    let approx = match get(obj, "approx") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let a = as_obj(v, "approx")?;
            let sample_manifest_text =
                as_str(req(a, "sample_manifest")?, "approx.sample_manifest")?;
            let sample_manifest = u64::from_str_radix(sample_manifest_text, 16).map_err(|_| {
                SnapshotError::Parse("`approx.sample_manifest` must be a hex string".to_string())
            })?;
            let ocd_errors = as_arr(req(a, "ocd_errors")?, "approx.ocd_errors")?
                .iter()
                .map(|pair| {
                    let nums = as_arr(pair, "approx.ocd_errors")?;
                    match nums {
                        [r, m] => Ok((
                            as_u64(r, "approx.ocd_errors")?,
                            as_u64(m, "approx.ocd_errors")?,
                        )),
                        _ => perr("approx ocd_error must be a pair".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            Some(ApproxMeta {
                seed: as_u64(req(a, "seed")?, "approx.seed")?,
                sample_rows: as_u64(req(a, "sample_rows")?, "approx.sample_rows")?,
                total_rows: as_u64(req(a, "total_rows")?, "approx.total_rows")?,
                strategy: as_str(req(a, "strategy")?, "approx.strategy")?.to_string(),
                strategy_column: opt_u64(req(a, "strategy_column")?, "approx.strategy_column")?,
                sample_manifest,
                epsilon_micros: as_u64(req(a, "epsilon_micros")?, "approx.epsilon_micros")?,
                confidence_micros: as_u64(
                    req(a, "confidence_micros")?,
                    "approx.confidence_micros",
                )?,
                ocd_errors,
            })
        }
    };

    Ok(SearchSnapshot {
        version: SNAPSHOT_VERSION,
        manifest,
        config,
        level: as_usize(req(obj, "level")?, "level")?,
        frontier: pair_list(req(obj, "frontier")?, "frontier")?,
        branches,
        failures,
        ocds: pair_list(req(obj, "ocds")?, "ocds")?,
        ods: pair_list(req(obj, "ods")?, "ods")?,
        generated: as_u64(req(obj, "generated")?, "generated")?,
        levels,
        level_capped: as_bool(req(obj, "level_capped")?, "level_capped")?,
        check_budget_hit: as_bool(req(obj, "check_budget_hit")?, "check_budget_hit")?,
        checks: as_u64(req(obj, "checks")?, "checks")?,
        elapsed_ms: as_u64(req(obj, "elapsed_ms")?, "elapsed_ms")?,
        kernels,
        cache,
        approx,
        pruned: pair_list(req(obj, "pruned")?, "pruned")?,
        termination,
    })
}

/// Read and parse a dump file.
pub fn read_snapshot(path: &Path) -> Result<SearchSnapshot, SnapshotError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
    parse_snapshot(&text)
}

// ---------------------------------------------------------------------------
// Dump files: naming, listing, retention
// ---------------------------------------------------------------------------

/// File name of a dump: `ckpt-<manifest hex>-L<level>[-final].json`.
/// The manifest prefix keys retention — dumps of different inputs sharing
/// a directory never GC each other.
fn dump_file_name(manifest: u64, level: usize, final_dump: bool) -> String {
    let suffix = if final_dump { "-final" } else { "" };
    format!("ckpt-{manifest:016x}-L{level:04}{suffix}.json")
}

/// Parse a dump file name back into `(manifest, level, is_final)`.
fn parse_dump_name(name: &str) -> Option<(u64, usize, bool)> {
    let rest = name.strip_prefix("ckpt-")?;
    let (hex, rest) = rest.split_at_checked(16)?;
    let manifest = u64::from_str_radix(hex, 16).ok()?;
    let rest = rest.strip_prefix("-L")?;
    let rest = rest.strip_suffix(".json")?;
    let (digits, final_dump) = match rest.strip_suffix("-final") {
        Some(d) => (d, true),
        None => (rest, false),
    };
    let level: usize = digits.parse().ok()?;
    Some((manifest, level, final_dump))
}

/// List the dump files in `dir` (optionally restricted to one manifest),
/// sorted ascending by `(level, is_final, name)` — the last entry is the
/// most advanced resume point.
pub fn list_snapshots(dir: &Path, manifest: Option<u64>) -> Result<Vec<PathBuf>, SnapshotError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| SnapshotError::Io(format!("{}: {e}", dir.display())))?;
    let mut found: Vec<(usize, bool, String)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some((m, level, final_dump)) = parse_dump_name(&name) {
            if manifest.is_none_or(|want| want == m) {
                found.push((level, final_dump, name));
            }
        }
    }
    found.sort();
    Ok(found
        .into_iter()
        .map(|(_, _, name)| dir.join(name))
        .collect())
}

/// The most advanced resume point in `dir`: the dump with the highest
/// level (a final dump wins over a boundary dump of the same level, since
/// it additionally records why the run stopped).
pub fn latest_snapshot(dir: &Path) -> Result<PathBuf, SnapshotError> {
    list_snapshots(dir, None)?
        .pop()
        .ok_or_else(|| SnapshotError::NoSnapshot(format!("no dump files in {}", dir.display())))
}

// ---------------------------------------------------------------------------
// The checkpoint recorder driving dumps during a run
// ---------------------------------------------------------------------------

/// Run-scoped checkpoint writer, owned by `discover`/`discover_resume` and
/// threaded into the level-synchronous drivers. Every method is
/// transitively panic-free and swallows IO errors into
/// [`CheckpointStats::write_errors`]: a failing checkpoint must degrade
/// durability, never correctness or liveness of the search.
pub(crate) struct CheckpointRecorder {
    policy: CheckpointPolicy,
    manifest: u64,
    config: SnapshotConfig,
    /// `(shared_cache, cache_budget_bytes)` of the run config, for the
    /// dump's cache metadata.
    cache_cfg: (bool, u64),
    start: Instant,
    /// Elapsed milliseconds inherited from the dump a resumed run started
    /// from (0 for a fresh run).
    base_elapsed_ms: u64,
    /// Kernel counters inherited from the originating dump.
    base_kernels: KernelCounts,
    /// Process-global kernel counters at run start.
    kernels_before: KernelCounts,
    /// Pruned candidates recorded so far (empty when
    /// [`CheckpointPolicy::record_pruned`] is off).
    pruned: Vec<CandidatePair>,
    /// The newest snapshot written, reused for the final dump.
    last: Option<SearchSnapshot>,
    stats: CheckpointStats,
}

impl CheckpointRecorder {
    /// Recorder for a fresh run.
    pub(crate) fn new(
        policy: CheckpointPolicy,
        rel: &Relation,
        run_config: &DiscoveryConfig,
        start: Instant,
        kernels_before: KernelCounts,
    ) -> CheckpointRecorder {
        CheckpointRecorder {
            policy,
            manifest: manifest_hash(rel),
            config: SnapshotConfig::from_config(run_config),
            cache_cfg: (
                run_config.shared_cache,
                run_config.cache_budget_bytes as u64,
            ),
            start,
            base_elapsed_ms: 0,
            base_kernels: KernelCounts::default(),
            kernels_before,
            pruned: Vec::new(),
            last: None,
            stats: CheckpointStats::default(),
        }
    }

    /// Recorder for a resumed run: inherits the originating dump's elapsed
    /// time, kernel counters, and pruned set so continued dumps stay
    /// cumulative.
    pub(crate) fn resuming(
        policy: CheckpointPolicy,
        origin: &SearchSnapshot,
        run_config: &DiscoveryConfig,
        start: Instant,
        kernels_before: KernelCounts,
    ) -> CheckpointRecorder {
        CheckpointRecorder {
            policy,
            manifest: origin.manifest,
            config: origin.config.clone(),
            cache_cfg: (
                run_config.shared_cache,
                run_config.cache_budget_bytes as u64,
            ),
            start,
            base_elapsed_ms: origin.elapsed_ms,
            base_kernels: origin.kernels,
            kernels_before,
            pruned: origin.pruned.clone(),
            last: None,
            stats: CheckpointStats::default(),
        }
    }

    /// Manifest hash of the run's input.
    pub(crate) fn manifest(&self) -> u64 {
        self.manifest
    }

    /// Configuration fingerprint of the run.
    pub(crate) fn fingerprint(&self) -> SnapshotConfig {
        self.config.clone()
    }

    /// Whether the boundary entering `level` should be dumped.
    pub(crate) fn wants(&self, level: usize) -> bool {
        let every = self.policy.every_levels.max(1);
        level <= 2 || (level - 2).is_multiple_of(every)
    }

    /// Cumulative elapsed milliseconds (inherited + this process).
    pub(crate) fn elapsed_ms(&self) -> u64 {
        let local = u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.base_elapsed_ms.saturating_add(local)
    }

    /// Cumulative kernel counters (inherited + this process's delta).
    pub(crate) fn kernels_now(&self) -> KernelCounts {
        ocdd_relation::sort::kernel_stats::snapshot()
            .since(&self.kernels_before)
            .plus(&self.base_kernels)
    }

    /// Cache metadata for a dump, from the run config and a live counter
    /// snapshot.
    pub(crate) fn cache_meta(&self, stats: Option<CacheStats>) -> Option<CacheMeta> {
        let (shared, budget_bytes) = self.cache_cfg;
        if !shared {
            return None;
        }
        Some(CacheMeta {
            shared,
            budget_bytes,
            stats: stats.unwrap_or_default(),
        })
    }

    /// Record a pruned candidate (checked, found invalid) for the dump's
    /// lattice verdicts.
    pub(crate) fn push_pruned(&mut self, x: &[ColumnId], y: &[ColumnId]) {
        if self.policy.record_pruned {
            self.pruned.push(CandidatePair {
                x: x.to_vec(),
                y: y.to_vec(),
            });
        }
    }

    /// Clone of the pruned set for embedding in a dump.
    pub(crate) fn pruned_pairs(&self) -> Vec<CandidatePair> {
        self.pruned.clone()
    }

    /// Write a boundary dump atomically and apply the keep-last retention.
    pub(crate) fn write_boundary(&mut self, snap: SearchSnapshot) {
        let path = self
            .policy
            .dir
            .join(dump_file_name(self.manifest, snap.level, false));
        let json = snapshot_to_json(&snap);
        match ocdd_iosafe::atomic_write_str(&path, &json) {
            Ok(()) => {
                self.stats.snapshots_written += 1;
                self.stats.last_level = snap.level;
                self.last = Some(snap);
                self.gc_keep_last();
            }
            Err(_) => self.stats.write_errors += 1,
        }
    }

    /// End-of-run hook: on [`TerminationReason::Complete`] with
    /// [`CheckpointPolicy::delete_on_complete`], delete this run's dumps
    /// (nothing left to resume); on an early stop, rewrite the newest
    /// boundary dump as a `-final` dump carrying the termination reason —
    /// the durable partial result.
    pub(crate) fn finish(&mut self, termination: &TerminationReason) {
        if termination.is_complete() {
            if self.policy.delete_on_complete {
                self.delete_all();
            }
            return;
        }
        let Some(mut snap) = self.last.clone() else {
            return;
        };
        snap.termination = Some(termination.clone());
        snap.elapsed_ms = self.elapsed_ms();
        snap.kernels = self.kernels_now();
        let path = self
            .policy
            .dir
            .join(dump_file_name(self.manifest, snap.level, true));
        match ocdd_iosafe::atomic_write_str(&path, &snapshot_to_json(&snap)) {
            Ok(()) => self.stats.snapshots_written += 1,
            Err(_) => self.stats.write_errors += 1,
        }
    }

    /// The run's checkpointing counters, for [`crate::DiscoveryResult`].
    pub(crate) fn stats(&self) -> CheckpointStats {
        self.stats.clone()
    }

    /// Keep only the newest `keep_last` boundary dumps of this run
    /// (final dumps are exempt). A no-op when `keep_last` is 0.
    fn gc_keep_last(&mut self) {
        if self.policy.keep_last == 0 {
            return;
        }
        let Ok(files) = list_snapshots(&self.policy.dir, Some(self.manifest)) else {
            return;
        };
        let boundaries: Vec<PathBuf> = files
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(parse_dump_name)
                    .is_some_and(|(_, _, final_dump)| !final_dump)
            })
            .collect();
        if boundaries.len() <= self.policy.keep_last {
            return;
        }
        let excess = boundaries.len() - self.policy.keep_last;
        for path in boundaries.into_iter().take(excess) {
            if std::fs::remove_file(&path).is_ok() {
                self.stats.files_deleted += 1;
            }
        }
    }

    /// Delete every dump of this run (boundary and final).
    fn delete_all(&mut self) {
        let Ok(files) = list_snapshots(&self.policy.dir, Some(self.manifest)) else {
            return;
        };
        for path in files {
            if std::fs::remove_file(&path).is_ok() {
                self.stats.files_deleted += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Approximate-pipeline recorder
// ---------------------------------------------------------------------------

/// Checkpoint writer of the approximate pipeline
/// ([`crate::approximate::run_pipeline`]): wraps a [`CheckpointRecorder`]
/// and stamps every dump with the run's [`ApproxMeta`] so a resume can
/// re-draw and validate the very sample the run triaged on. Same
/// swallow-IO-errors contract as the exact recorder.
pub(crate) struct ApproxRecorder {
    inner: CheckpointRecorder,
    meta: ApproxMeta,
}

/// Build the sampling metadata a dump of this approximate run carries
/// (the `ocd_errors` array is filled per dump from the accumulated OCDs).
pub(crate) fn approx_meta(
    cfg: &crate::approximate::ApproxConfig,
    stats: &crate::approximate::ApproxStats,
) -> ApproxMeta {
    ApproxMeta {
        seed: cfg.seed,
        sample_rows: stats.sample_rows as u64,
        total_rows: stats.total_rows as u64,
        strategy: cfg.strategy.label().to_string(),
        strategy_column: cfg.strategy.column().map(|c| c as u64),
        sample_manifest: stats.sample_manifest,
        epsilon_micros: to_micros(cfg.epsilon),
        confidence_micros: to_micros(cfg.confidence),
        ocd_errors: Vec::new(),
    }
}

/// Recorder for an approximate run, when its base configuration installs
/// a [`CheckpointPolicy`]; `None` otherwise.
pub(crate) fn approx_recorder(
    rel: &Relation,
    cfg: &crate::approximate::ApproxConfig,
    stats: &crate::approximate::ApproxStats,
) -> Option<ApproxRecorder> {
    let policy = cfg.base.checkpoint.clone()?;
    Some(ApproxRecorder {
        inner: CheckpointRecorder::new(
            policy,
            rel,
            &cfg.base,
            crate::runtime::now(),
            ocdd_relation::sort::kernel_stats::snapshot(),
        ),
        meta: approx_meta(cfg, stats),
    })
}

impl ApproxRecorder {
    /// Build the dump of the boundary entering `level_no`.
    fn build(
        &self,
        level_no: usize,
        level: &[(crate::deps::AttrList, crate::deps::AttrList)],
        out: &crate::approximate::ApproximateResult,
        budget: &crate::runtime::Budget,
    ) -> SearchSnapshot {
        let mut meta = self.meta.clone();
        meta.ocd_errors = out
            .ocds
            .iter()
            .map(|o| (o.removals as u64, o.rows as u64))
            .collect();
        let pair = |x: &crate::deps::AttrList, y: &crate::deps::AttrList| CandidatePair {
            x: x.as_slice().to_vec(),
            y: y.as_slice().to_vec(),
        };
        SearchSnapshot {
            version: SNAPSHOT_VERSION,
            manifest: self.inner.manifest(),
            config: self.inner.fingerprint(),
            level: level_no,
            frontier: level.iter().map(|(x, y)| pair(x, y)).collect(),
            branches: Vec::new(),
            failures: Vec::new(),
            ocds: out
                .ocds
                .iter()
                .map(|o| pair(&o.ocd.lhs, &o.ocd.rhs))
                .collect(),
            ods: out.ods.iter().map(|o| pair(&o.lhs, &o.rhs)).collect(),
            generated: 0,
            levels: Vec::new(),
            level_capped: false,
            check_budget_hit: false,
            checks: budget.checks(),
            elapsed_ms: self.inner.elapsed_ms(),
            kernels: self.inner.kernels_now(),
            cache: self.inner.cache_meta(None),
            approx: Some(meta),
            pruned: Vec::new(),
            termination: None,
        }
    }

    /// Dump the boundary entering `level_no` if the policy's interval
    /// wants it.
    pub(crate) fn record_boundary(
        &mut self,
        level_no: usize,
        level: &[(crate::deps::AttrList, crate::deps::AttrList)],
        out: &crate::approximate::ApproximateResult,
        budget: &crate::runtime::Budget,
    ) {
        if !self.inner.wants(level_no) {
            return;
        }
        let snap = self.build(level_no, level, out, budget);
        self.inner.write_boundary(snap);
    }

    /// End-of-run hook: refresh the resume point with the final
    /// accumulated state on an early stop, then apply the exact
    /// recorder's completion/final-dump protocol.
    pub(crate) fn finish(
        &mut self,
        level_no: usize,
        level: &[(crate::deps::AttrList, crate::deps::AttrList)],
        out: &crate::approximate::ApproximateResult,
        budget: &crate::runtime::Budget,
        _stats: &crate::approximate::ApproxStats,
    ) {
        if !out.termination.is_complete() {
            let snap = self.build(level_no, level, out, budget);
            self.inner.write_boundary(snap);
        }
        self.inner.finish(&out.termination);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SearchSnapshot {
        SearchSnapshot {
            version: SNAPSHOT_VERSION,
            manifest: 0xdead_beef_0123_4567,
            config: SnapshotConfig {
                max_checks: Some(1000),
                max_level: None,
                dedup_candidates: true,
                column_reduction: true,
            },
            level: 3,
            frontier: vec![
                CandidatePair {
                    x: vec![0, 2],
                    y: vec![1],
                },
                CandidatePair {
                    x: vec![0],
                    y: vec![1, 3],
                },
            ],
            branches: vec![
                SnapshotBranch {
                    branch: (0, 1),
                    allowance: 500,
                    spent: 12,
                    stopped: false,
                    failed: false,
                },
                SnapshotBranch {
                    branch: (0, 2),
                    allowance: 500,
                    spent: 500,
                    stopped: true,
                    failed: false,
                },
            ],
            failures: vec![SnapshotFailure {
                branch: (1, 2),
                message: "boom \"quoted\"\n".to_string(),
            }],
            ocds: vec![CandidatePair {
                x: vec![0],
                y: vec![1],
            }],
            ods: vec![CandidatePair {
                x: vec![0],
                y: vec![3],
            }],
            generated: 42,
            levels: vec![LevelStats {
                level: 2,
                candidates: 6,
                valid_ocds: 2,
                valid_ods: 1,
            }],
            level_capped: false,
            check_budget_hit: true,
            checks: 77,
            elapsed_ms: 1234,
            kernels: KernelCounts {
                counting: 1,
                packed_radix: 2,
                chained_refine: 3,
                comparator: 4,
                scan_scalar: 5,
                scan_block: 6,
                scan_simd: 0,
            },
            cache: Some(CacheMeta {
                shared: true,
                budget_bytes: 1 << 20,
                stats: CacheStats {
                    hits: 10,
                    misses: 3,
                    evictions: 1,
                    resident_bytes: 512,
                    entries: 2,
                },
            }),
            approx: None,
            pruned: vec![CandidatePair {
                x: vec![2],
                y: vec![3],
            }],
            termination: None,
        }
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let snap = sample_snapshot();
        let json = snapshot_to_json(&snap);
        let parsed = parse_snapshot(&json).expect("round trip");
        assert_eq!(parsed, snap);
        // Serialization is canonical: re-serializing gives the same bytes.
        assert_eq!(snapshot_to_json(&parsed), json);
    }

    #[test]
    fn maximal_dump_round_trips_byte_identically() {
        // Every optional field populated at once — approx provenance,
        // `WorkerFailure` termination with its payload, shared-cache
        // metadata, pruned verdicts, and non-zero counts in every kernel
        // counter. This is the live oracle behind the static
        // `schema-parity` lint rule: a serializer key the parser dropped
        // (or vice versa) desyncs this equality before the linter's text
        // pass ever runs.
        let mut snap = sample_snapshot();
        snap.kernels.scan_simd = 9;
        snap.approx = Some(ApproxMeta {
            seed: 0xfeed_f00d,
            sample_rows: 2_000,
            total_rows: 150_000,
            strategy: "stratified".to_string(),
            strategy_column: Some(4),
            sample_manifest: 0x0123_4567_89ab_cdef,
            epsilon_micros: 10_000,
            confidence_micros: 990_000,
            ocd_errors: vec![(0, 2_000), (17, 2_000)],
        });
        snap.termination = Some(TerminationReason::WorkerFailure {
            branches: vec![(1, 2), (3, 4)],
            message: "worker panicked: index out of bounds \"len 0\"".to_string(),
        });
        let json = snapshot_to_json(&snap);
        let parsed = parse_snapshot(&json).expect("maximal round trip");
        assert_eq!(parsed, snap);
        assert_eq!(
            snapshot_to_json(&parsed),
            json,
            "re-serialization must be byte-identical"
        );
        for key in [
            "\"approx\":",
            "\"termination\":{\"kind\":\"worker_failure\"",
            "\"scan_simd\":9",
            "\"strategy\":\"stratified\"",
            "\"ocd_errors\":[[0,2000],[17,2000]]",
        ] {
            assert!(json.contains(key), "maximal dump must carry {key}: {json}");
        }
    }

    #[test]
    fn approx_meta_is_optional_and_round_trips() {
        let mut snap = sample_snapshot();
        // Exact-search dumps never carry the key — their serialized form
        // is byte-identical to pre-§14 dumps.
        assert!(!snapshot_to_json(&snap).contains("\"approx\""));
        snap.approx = Some(ApproxMeta {
            seed: 7,
            sample_rows: 100,
            total_rows: 1000,
            strategy: "stratified".to_string(),
            strategy_column: Some(2),
            sample_manifest: 0xabcd_ef01_2345_6789,
            epsilon_micros: 50_000,
            confidence_micros: 950_000,
            ocd_errors: vec![(3, 100)],
        });
        let json = snapshot_to_json(&snap);
        let parsed = parse_snapshot(&json).expect("round trip");
        assert_eq!(parsed, snap);
        assert_eq!(snapshot_to_json(&parsed), json);
    }

    #[test]
    fn micros_conversion_is_exact_on_the_knob_grid() {
        assert_eq!(to_micros(0.0), 0);
        assert_eq!(to_micros(0.05), 50_000);
        assert_eq!(to_micros(0.95), 950_000);
        assert_eq!(to_micros(1.0), 1_000_000);
        assert_eq!(to_micros(7.0), 1_000_000, "clamped");
    }

    #[test]
    fn termination_round_trips_every_variant() {
        let variants = vec![
            TerminationReason::Complete,
            TerminationReason::LevelCap,
            TerminationReason::CheckBudget,
            TerminationReason::TimeBudget,
            TerminationReason::Cancelled,
            TerminationReason::WorkerFailure {
                branches: vec![(0, 1), (2, 5)],
                message: "injected \"panic\"\npayload".to_string(),
            },
        ];
        for t in variants {
            let mut snap = sample_snapshot();
            snap.termination = Some(t.clone());
            let parsed = parse_snapshot(&snapshot_to_json(&snap)).expect("round trip");
            assert_eq!(parsed.termination, Some(t));
        }
    }

    #[test]
    fn u64_max_allowance_survives_the_round_trip() {
        let mut snap = sample_snapshot();
        snap.branches = vec![SnapshotBranch {
            branch: (3, 4),
            allowance: u64::MAX,
            spent: u64::MAX - 1,
            stopped: false,
            failed: false,
        }];
        snap.config.max_checks = None;
        let parsed = parse_snapshot(&snapshot_to_json(&snap)).expect("round trip");
        assert_eq!(parsed.branches, snap.branches);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"format\":\"ocdd-snapshot\"",
            "[1,2,]",
            "{\"a\":01e5}",
            "{\"a\":-3}",
            "nullx",
            "{\"a\":\"unterminated",
        ] {
            assert!(
                parse_snapshot(bad).is_err(),
                "malformed input accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let snap = sample_snapshot();
        let json = snapshot_to_json(&snap);
        let wrong_magic = json.replace("ocdd-snapshot", "oxidd-dump");
        assert!(matches!(
            parse_snapshot(&wrong_magic),
            Err(SnapshotError::BadMagic(_))
        ));
        let wrong_version = json.replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            parse_snapshot(&wrong_version),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn validate_rejects_wrong_relation_and_config() {
        use ocdd_relation::{RelationBuilder, Value};
        let mut b = RelationBuilder::new(vec!["a", "b"]);
        b.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        b.push_row(vec![Value::Int(2), Value::Int(1)]).unwrap();
        let rel = b.finish();

        let mut snap = sample_snapshot();
        snap.manifest = manifest_hash(&rel);
        snap.config = SnapshotConfig::from_config(&DiscoveryConfig::default());

        assert_eq!(snap.validate(&rel, &DiscoveryConfig::default()), Ok(()));

        // Wrong relation.
        let mut other = RelationBuilder::new(vec!["a", "b"]);
        other.push_row(vec![Value::Int(1), Value::Int(1)]).unwrap();
        other.push_row(vec![Value::Int(2), Value::Int(2)]).unwrap();
        assert!(matches!(
            snap.validate(&other.finish(), &DiscoveryConfig::default()),
            Err(SnapshotError::ManifestMismatch { .. })
        ));

        // Semantic config knob differs.
        let tighter = DiscoveryConfig {
            max_checks: Some(10),
            ..DiscoveryConfig::default()
        };
        assert_eq!(
            snap.validate(&rel, &tighter),
            Err(SnapshotError::ConfigMismatch("max_checks"))
        );

        // Non-semantic knobs (mode, checker, caches) may differ freely.
        let different_backend = DiscoveryConfig {
            mode: crate::config::ParallelMode::WorkStealing(4),
            checker: crate::config::CheckerBackend::PrefixCache,
            shared_cache: true,
            ..DiscoveryConfig::default()
        };
        assert_eq!(snap.validate(&rel, &different_backend), Ok(()));

        // Version gate.
        snap.version = 0;
        assert!(matches!(
            snap.validate(&rel, &DiscoveryConfig::default()),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn dump_names_round_trip_and_sort_by_level() {
        let name = dump_file_name(0xabc, 12, false);
        assert_eq!(name, "ckpt-0000000000000abc-L0012.json");
        assert_eq!(parse_dump_name(&name), Some((0xabc, 12, false)));
        let final_name = dump_file_name(0xabc, 12, true);
        assert_eq!(parse_dump_name(&final_name), Some((0xabc, 12, true)));
        assert_eq!(parse_dump_name("ckpt-zz-L1.json"), None);
        assert_eq!(parse_dump_name("other.json"), None);
        assert_eq!(parse_dump_name("ckpt-0000000000000abc-L12.txt"), None);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ocdd-snap-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recorder_for(dir: &Path, keep_last: usize, delete_on_complete: bool) -> CheckpointRecorder {
        use ocdd_relation::{RelationBuilder, Value};
        let mut b = RelationBuilder::new(vec!["a", "b"]);
        b.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        let rel = b.finish();
        let policy = CheckpointPolicy {
            keep_last,
            delete_on_complete,
            ..CheckpointPolicy::new(dir)
        };
        CheckpointRecorder::new(
            policy,
            &rel,
            &DiscoveryConfig::default(),
            crate::runtime::now(),
            KernelCounts::default(),
        )
    }

    fn boundary_snapshot(rec: &CheckpointRecorder, level: usize) -> SearchSnapshot {
        SearchSnapshot {
            version: SNAPSHOT_VERSION,
            manifest: rec.manifest(),
            config: rec.fingerprint(),
            level,
            frontier: Vec::new(),
            branches: Vec::new(),
            failures: Vec::new(),
            ocds: Vec::new(),
            ods: Vec::new(),
            generated: 0,
            levels: Vec::new(),
            level_capped: false,
            check_budget_hit: false,
            checks: 0,
            elapsed_ms: 0,
            kernels: KernelCounts::default(),
            cache: None,
            approx: None,
            pruned: Vec::new(),
            termination: None,
        }
    }

    #[test]
    fn retention_keeps_last_n_boundary_dumps() {
        let dir = tmp_dir("retention");
        let mut rec = recorder_for(&dir, 2, true);
        for level in 2..=6 {
            rec.write_boundary(boundary_snapshot(&rec, level));
        }
        let files = list_snapshots(&dir, Some(rec.manifest())).unwrap();
        let names: Vec<String> = files
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(names.len(), 2, "keep_last=2 must prune to 2: {names:?}");
        assert!(names[0].contains("L0005") && names[1].contains("L0006"));
        let stats = rec.stats();
        assert_eq!(stats.snapshots_written, 5);
        assert_eq!(stats.files_deleted, 3);
        assert_eq!(stats.write_errors, 0);
        assert_eq!(stats.last_level, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_run_deletes_all_dumps() {
        let dir = tmp_dir("complete-gc");
        let mut rec = recorder_for(&dir, 0, true);
        for level in 2..=4 {
            rec.write_boundary(boundary_snapshot(&rec, level));
        }
        rec.finish(&TerminationReason::Complete);
        assert!(list_snapshots(&dir, None).unwrap().is_empty());
        assert_eq!(rec.stats().files_deleted, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_run_keeps_dumps_when_gc_disabled() {
        let dir = tmp_dir("keep-all");
        let mut rec = recorder_for(&dir, 0, false);
        for level in 2..=4 {
            rec.write_boundary(boundary_snapshot(&rec, level));
        }
        rec.finish(&TerminationReason::Complete);
        assert_eq!(list_snapshots(&dir, None).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn early_stop_writes_final_dump_with_termination() {
        let dir = tmp_dir("final");
        let mut rec = recorder_for(&dir, 0, true);
        rec.write_boundary(boundary_snapshot(&rec, 2));
        rec.write_boundary(boundary_snapshot(&rec, 3));
        rec.finish(&TerminationReason::CheckBudget);
        let latest = latest_snapshot(&dir).unwrap();
        assert!(latest.to_string_lossy().contains("-final"));
        let snap = read_snapshot(&latest).unwrap();
        assert_eq!(snap.termination, Some(TerminationReason::CheckBudget));
        assert_eq!(snap.level, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_snapshot_prefers_highest_level() {
        let dir = tmp_dir("latest");
        let mut rec = recorder_for(&dir, 0, true);
        for level in 2..=5 {
            rec.write_boundary(boundary_snapshot(&rec, level));
        }
        let latest = latest_snapshot(&dir).unwrap();
        assert!(latest.to_string_lossy().contains("L0005"));
        let empty = tmp_dir("latest-empty");
        assert!(matches!(
            latest_snapshot(&empty),
            Err(SnapshotError::NoSnapshot(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn wants_respects_interval_and_always_dumps_the_start() {
        let dir = tmp_dir("wants");
        let mut rec = recorder_for(&dir, 0, true);
        rec.policy.every_levels = 3;
        assert!(rec.wants(2), "initial boundary is always dumped");
        assert!(!rec.wants(3));
        assert!(!rec.wants(4));
        assert!(rec.wants(5));
        assert!(rec.wants(8));
        rec.policy.every_levels = 0; // behaves like 1
        assert!(rec.wants(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_error_messages_name_the_problem() {
        let e = SnapshotError::ManifestMismatch {
            snapshot: 1,
            relation: 2,
        };
        assert!(e.to_string().contains("manifest mismatch"));
        assert!(SnapshotError::ConfigMismatch("max_checks")
            .to_string()
            .contains("max_checks"));
        assert!(SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
    }
}
