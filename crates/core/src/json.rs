//! Hand-rolled JSON export of discovery results (no serde dependency).
//!
//! The output is a stable, documented schema for downstream tooling:
//!
//! ```json
//! {
//!   "rows": 6, "columns": 5, "complete": true,
//!   "termination": "complete",
//!   "checks": 87, "elapsed_ms": 0.41,
//!   "constants": ["flag"],
//!   "equivalence_classes": [["income", "tax"]],
//!   "ocds": [{"lhs": ["income"], "rhs": ["savings"]}],
//!   "ods":  [{"lhs": ["income"], "rhs": ["bracket"]}]
//! }
//! ```
//!
//! `termination` is the [`crate::TerminationReason`] label
//! (`complete` / `level_cap` / `check_budget` / `time_budget` /
//! `cancelled` / `worker_failure`); `complete` is kept as the derived
//! boolean. A `worker_failure` run additionally carries
//! `"failed_branches": [[colA, colB], ...]` (quarantined level-2 branch
//! seed pairs, as column names) and `"failure_message"`. A `WorkStealing`
//! run carries `"scheduler": {"batches", "levels", "steals", "workers":
//! [{"batches", "steals"}, ...]}` — scheduling observability, not part of
//! the deterministic result. Every run carries `"kernels": {"sorts":
//! {"counting", "packed_radix", "chained_refine", "comparator"},
//! "scans": {"scalar", "block", "simd"}}` — which sort/scan kernels the
//! run's checks dispatched to (observability; the dependencies found are
//! kernel-independent). A checkpointed run carries `"checkpoint":
//! {"snapshots_written", "files_deleted", "write_errors", "last_level"}` —
//! again observability only.

use crate::deps::AttrList;
use crate::results::DiscoveryResult;
use ocdd_relation::Relation;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn name_array(list: &AttrList, rel: &Relation) -> String {
    let names: Vec<String> = list
        .as_slice()
        .iter()
        .map(|&c| format!("\"{}\"", escape(&rel.meta(c).name)))
        .collect();
    format!("[{}]", names.join(","))
}

/// Serialize a [`DiscoveryResult`] to JSON, resolving column ids to names
/// through `rel`.
pub fn result_to_json(result: &DiscoveryResult, rel: &Relation) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"rows\":{},\"columns\":{},\"complete\":{},\"termination\":\"{}\",",
        rel.num_rows(),
        rel.num_columns(),
        result.complete(),
        result.termination.label(),
    );
    if let crate::runtime::TerminationReason::WorkerFailure { branches, message } =
        &result.termination
    {
        let pairs: Vec<String> = branches
            .iter()
            .map(|&(a, b)| {
                format!(
                    "[\"{}\",\"{}\"]",
                    escape(&rel.meta(a).name),
                    escape(&rel.meta(b).name)
                )
            })
            .collect();
        let _ = write!(
            out,
            "\"failed_branches\":[{}],\"failure_message\":\"{}\",",
            pairs.join(","),
            escape(message)
        );
    }
    let _ = write!(
        out,
        "\"checks\":{},\"elapsed_ms\":{:.3},",
        result.checks,
        result.elapsed.as_secs_f64() * 1e3
    );
    let k = &result.kernels;
    let _ = write!(
        out,
        "\"kernels\":{{\"sorts\":{{\"counting\":{},\"packed_radix\":{},\"chained_refine\":{},\"comparator\":{}}},\"scans\":{{\"scalar\":{},\"block\":{},\"simd\":{}}}}},",
        k.counting,
        k.packed_radix,
        k.chained_refine,
        k.comparator,
        k.scan_scalar,
        k.scan_block,
        k.scan_simd,
    );
    if let Some(sched) = &result.scheduler {
        let workers: Vec<String> = sched
            .workers
            .iter()
            .map(|w| format!("{{\"batches\":{},\"steals\":{}}}", w.batches, w.steals))
            .collect();
        let _ = write!(
            out,
            "\"scheduler\":{{\"batches\":{},\"levels\":{},\"steals\":{},\"workers\":[{}]}},",
            sched.batches,
            sched.levels,
            sched.steals(),
            workers.join(",")
        );
    }
    if let Some(ckpt) = &result.checkpoint {
        let _ = write!(
            out,
            "\"checkpoint\":{{\"snapshots_written\":{},\"files_deleted\":{},\"write_errors\":{},\"last_level\":{}}},",
            ckpt.snapshots_written, ckpt.files_deleted, ckpt.write_errors, ckpt.last_level,
        );
    }

    let constants: Vec<String> = result
        .constants
        .iter()
        .map(|&c| format!("\"{}\"", escape(&rel.meta(c).name)))
        .collect();
    let _ = write!(out, "\"constants\":[{}],", constants.join(","));

    let classes: Vec<String> = result
        .equivalence_classes
        .iter()
        .map(|class| {
            let names: Vec<String> = class
                .iter()
                .map(|&c| format!("\"{}\"", escape(&rel.meta(c).name)))
                .collect();
            format!("[{}]", names.join(","))
        })
        .collect();
    let _ = write!(out, "\"equivalence_classes\":[{}],", classes.join(","));

    let ocds: Vec<String> = result
        .ocds
        .iter()
        .map(|o| {
            format!(
                "{{\"lhs\":{},\"rhs\":{}}}",
                name_array(&o.lhs, rel),
                name_array(&o.rhs, rel)
            )
        })
        .collect();
    let _ = write!(out, "\"ocds\":[{}],", ocds.join(","));

    let ods: Vec<String> = result
        .ods
        .iter()
        .map(|o| {
            format!(
                "{{\"lhs\":{},\"rhs\":{}}}",
                name_array(&o.lhs, rel),
                name_array(&o.rhs, rel)
            )
        })
        .collect();
    let _ = write!(out, "\"ods\":[{}]", ods.join(","));
    out.push('}');
    out
}

/// Serialize an [`ApproximateResult`](crate::ApproximateResult) to JSON.
///
/// Same envelope as [`result_to_json`] where the fields coincide
/// (`rows`/`columns`/`complete`/`termination`/`checks`/`ocds`/`ods`) —
/// OCDs additionally carry their measured `error` with its exact
/// `removals`/`rows` rational — plus an `"approx"` object with the
/// pipeline's triage accounting: `sample_rows`, `total_rows`, `seed`,
/// `sample_manifest`, `exhaustive`, `estimated` (sample-phase
/// validations), `accepted_by_sample`, `rejected_by_sample`, `escalated`
/// (full-data verifications), `full_checks_saved`, and the
/// `sample_row_scans`/`full_row_scans` cost model.
pub fn approx_result_to_json(result: &crate::ApproximateResult, rel: &Relation) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"rows\":{},\"columns\":{},\"complete\":{},\"termination\":\"{}\",\"checks\":{},",
        rel.num_rows(),
        rel.num_columns(),
        result.complete(),
        result.termination.label(),
        result.checks,
    );
    if let Some(a) = &result.approx {
        let _ = write!(
            out,
            "\"approx\":{{\"sample_rows\":{},\"total_rows\":{},\"seed\":{},\"sample_manifest\":\"{:016x}\",\"exhaustive\":{},\"estimated\":{},\"accepted_by_sample\":{},\"rejected_by_sample\":{},\"escalated\":{},\"full_checks_saved\":{},\"sample_row_scans\":{},\"full_row_scans\":{}}},",
            a.sample_rows,
            a.total_rows,
            a.seed,
            a.sample_manifest,
            a.exhaustive,
            a.estimated,
            a.accepted_by_sample,
            a.rejected_by_sample,
            a.escalated,
            a.full_checks_saved,
            a.sample_row_scans,
            a.full_row_scans,
        );
    }
    let ocds: Vec<String> = result
        .ocds
        .iter()
        .map(|o| {
            format!(
                "{{\"lhs\":{},\"rhs\":{},\"error\":{:.6},\"removals\":{},\"rows\":{}}}",
                name_array(&o.ocd.lhs, rel),
                name_array(&o.ocd.rhs, rel),
                o.error,
                o.removals,
                o.rows,
            )
        })
        .collect();
    let _ = write!(out, "\"ocds\":[{}],", ocds.join(","));
    let ods: Vec<String> = result
        .ods
        .iter()
        .map(|o| {
            format!(
                "{{\"lhs\":{},\"rhs\":{}}}",
                name_array(&o.lhs, rel),
                name_array(&o.rhs, rel)
            )
        })
        .collect();
    let _ = write!(out, "\"ods\":[{}]", ods.join(","));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{discover, DiscoveryConfig};
    use ocdd_relation::Value;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn json_shape_on_tax_like_table() {
        let rel = Relation::from_columns(vec![
            (
                "income".to_string(),
                vec![1, 2, 2, 3].into_iter().map(Value::Int).collect(),
            ),
            (
                "tax".to_string(),
                vec![10, 20, 20, 30].into_iter().map(Value::Int).collect(),
            ),
            ("flag".to_string(), vec![Value::Int(0); 4]),
        ])
        .unwrap();
        let result = discover(&rel, &DiscoveryConfig::default());
        let json = result_to_json(&result, &rel);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"constants\":[\"flag\"]"), "{json}");
        assert!(
            json.contains("\"equivalence_classes\":[[\"income\",\"tax\"]]"),
            "{json}"
        );
        assert!(json.contains("\"complete\":true"));
        assert!(json.contains("\"termination\":\"complete\""));
        assert!(json.contains("\"kernels\":{\"sorts\":{"), "{json}");
        assert!(json.contains("\"scans\":{\"scalar\":"), "{json}");
    }

    #[test]
    fn worker_failure_carries_branches_and_message() {
        let rel = Relation::from_columns(vec![
            ("a".to_string(), vec![Value::Int(1), Value::Int(2)]),
            ("b".to_string(), vec![Value::Int(1), Value::Int(2)]),
        ])
        .unwrap();
        let result = DiscoveryResult {
            termination: crate::TerminationReason::WorkerFailure {
                branches: vec![(0, 1)],
                message: "boom \"quoted\"".into(),
            },
            ..DiscoveryResult::default()
        };
        let json = result_to_json(&result, &rel);
        assert!(
            json.contains("\"termination\":\"worker_failure\""),
            "{json}"
        );
        assert!(json.contains("\"complete\":false"), "{json}");
        assert!(
            json.contains("\"failed_branches\":[[\"a\",\"b\"]]"),
            "{json}"
        );
        assert!(
            json.contains("\"failure_message\":\"boom \\\"quoted\\\"\""),
            "{json}"
        );
    }

    #[test]
    fn workstealing_run_emits_scheduler_stats() {
        let rel = Relation::from_columns(vec![
            (
                "a".to_string(),
                vec![1, 2, 3, 4].into_iter().map(Value::Int).collect(),
            ),
            (
                "b".to_string(),
                vec![2, 1, 4, 3].into_iter().map(Value::Int).collect(),
            ),
            (
                "c".to_string(),
                vec![1, 3, 2, 4].into_iter().map(Value::Int).collect(),
            ),
        ])
        .unwrap();
        let config = DiscoveryConfig {
            mode: crate::ParallelMode::WorkStealing(2),
            ..DiscoveryConfig::default()
        };
        let result = discover(&rel, &config);
        let json = result_to_json(&result, &rel);
        assert!(json.contains("\"scheduler\":{\"batches\":"), "{json}");
        assert!(json.contains("\"workers\":[{\"batches\":"), "{json}");
        // Sequential runs must not carry the key.
        let seq = discover(&rel, &DiscoveryConfig::default());
        assert!(!result_to_json(&seq, &rel).contains("\"scheduler\""));
    }

    #[test]
    fn approx_json_carries_triage_accounting_and_errors() {
        let rel = Relation::from_columns(vec![
            ("a".to_string(), (0..20).map(Value::Int).collect()),
            (
                "b".to_string(),
                (0..20).map(|i| Value::Int(i / 2)).collect(),
            ),
        ])
        .unwrap();
        let res = crate::discover_approximate(&rel, &DiscoveryConfig::default(), 0.0);
        let json = approx_result_to_json(&res, &rel);
        assert!(json.contains("\"approx\":{\"sample_rows\":20"), "{json}");
        assert!(json.contains("\"exhaustive\":true"), "{json}");
        assert!(json.contains("\"full_checks_saved\":0"), "{json}");
        assert!(json.contains("\"error\":0.000000"), "{json}");
        assert!(json.contains("\"removals\":0"), "{json}");
        // Structural balance, same validator as the exact export test.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn json_is_parseable_by_a_naive_validator() {
        // Bracket/quote balance check — catches structural mistakes without
        // a JSON dependency.
        let rel = Relation::from_columns(vec![(
            "weird \"name\"\n".to_string(),
            vec![Value::Int(1), Value::Int(2)],
        )])
        .unwrap();
        let result = discover(&rel, &DiscoveryConfig::default());
        let json = result_to_json(&result, &rel);
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
