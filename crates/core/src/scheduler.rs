//! Work-stealing batch scheduler for the level-synchronous search mode
//! ([`crate::config::ParallelMode::WorkStealing`]).
//!
//! The unit of scheduling is a **batch**: all candidates of one BFS level
//! that share the same sort-key prefix (the `X` of the single OCD check
//! `XY → YX`, Theorem 4.1). Batches are dealt round-robin onto one deque
//! per worker in canonical level order; a worker pops from the *front* of
//! its own deque (preserving the canonical order it was dealt) and, when
//! empty, steals from the *back* of a victim's deque — the classic
//! Chase–Lev discipline, hand-rolled over mutexes because the workspace is
//! dependency-free. Each deque's mutex is touched once per batch (tens of
//! checks), never per check, so contention is off the hot path by
//! construction.
//!
//! Scheduling is *not* part of the result: batches are executed
//! speculatively and the driver re-imposes canonical candidate order (and
//! replays the per-branch check allowances) in an input-ordered post-filter
//! — see `search::run_workstealing_levels`. Steal counts are surfaced in
//! [`SchedulerStats`] purely as observability.

use crate::sync_shim::Mutex;
use std::collections::VecDeque;

/// Per-worker scheduling counters of a work-stealing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSchedStats {
    /// Batches this worker executed (own + stolen).
    pub batches: u64,
    /// Batches this worker stole from another worker's deque.
    pub steals: u64,
}

/// Run-level scheduling counters, reported in
/// [`crate::DiscoveryResult::scheduler`] for work-stealing runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Total prefix-grouped batches formed across all levels.
    pub batches: u64,
    /// BFS levels the scheduler processed.
    pub levels: u64,
    /// Per-worker execution counters, indexed by worker id.
    pub workers: Vec<WorkerSchedStats>,
}

impl SchedulerStats {
    /// Total steals across all workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// One bounded deque per worker holding batch indexes. Built fresh per
/// level; `pop` is the only operation after construction.
pub(crate) struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

/// The queues hold plain `usize` batch indexes and the critical sections
/// are single `VecDeque` operations, so a poisoned lock (a worker panicked
/// between `lock()` and the pop — impossible today, but cheap to be
/// defensive about) leaves a structurally valid deque behind: recover it.
fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl StealQueues {
    /// Deal `batches` batch indexes round-robin across `workers` deques:
    /// batch `b` lands at the back of deque `b % workers`, so each deque
    /// holds its share in canonical level order.
    pub(crate) fn new(workers: usize, batches: usize) -> StealQueues {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        // lint: allow(unprobed-loop, round-robin seeding, one push per level batch)
        for b in 0..batches {
            if let Some(q) = queues.get_mut(b % workers) {
                q.push_back(b);
            }
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next batch for `worker`: front of its own deque, else the back of
    /// the first non-empty victim deque (scanning cyclically from
    /// `worker + 1`). Returns the batch index and whether it was stolen;
    /// `None` when every deque is empty.
    pub(crate) fn pop(&self, worker: usize) -> Option<(usize, bool)> {
        if let Some(b) = self
            .queues
            .get(worker)
            .and_then(|q| recover(q.lock()).pop_front())
        {
            return Some((b, false));
        }
        let n = self.queues.len();
        // lint: allow(unprobed-loop, victim scan bounded by the worker count; callers poll the budget at batch boundaries)
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(b) = self
                .queues
                .get(victim)
                .and_then(|q| recover(q.lock()).pop_back())
            {
                return Some((b, true));
            }
        }
        None
    }
}

/// Interleaving models of the steal protocol, run by the loom lane
/// (`cargo test -p ocdd-core --features loom`, `OCDD_CI_LOOM=1 ./ci.sh`).
/// Every schedule of the instrumented mutex operations is explored; see
/// `crates/shims/loom` for the checker and DESIGN.md §10 for the lane.
#[cfg(all(test, feature = "loom"))]
mod loom_models {
    use super::*;
    use std::sync::Arc;

    /// Two workers drain a three-batch level concurrently. Under every
    /// interleaving of owner pops and steals, each batch surfaces exactly
    /// once and none is lost — the mutual-exclusion core of the
    /// owner-front/thief-back discipline.
    #[test]
    fn pop_and_steal_yield_each_batch_exactly_once() {
        loom::model(|| {
            let q = Arc::new(StealQueues::new(2, 3));
            let q2 = Arc::clone(&q);
            let thief = loom::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((b, _)) = q2.pop(1) {
                    got.push(b);
                }
                got
            });
            let mut all = Vec::new();
            while let Some((b, _)) = q.pop(0) {
                all.push(b);
            }
            all.extend(thief.join().expect("worker 1 finishes"));
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2], "every batch exactly once");
        });
    }

    /// A worker whose own deque is empty races the owner for the last
    /// batch: exactly one of them wins it on every schedule.
    #[test]
    fn contended_last_batch_goes_to_exactly_one_worker() {
        loom::model(|| {
            let q = Arc::new(StealQueues::new(2, 1));
            let q2 = Arc::clone(&q);
            let thief = loom::thread::spawn(move || q2.pop(1));
            let own = q.pop(0);
            let stolen = thief.join().expect("worker 1 finishes");
            match (own, stolen) {
                (Some((0, false)), None) | (None, Some((0, true))) => {}
                other => panic!("batch 0 must surface exactly once, got {other:?}"),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_robin_deal_preserves_per_worker_order() {
        let q = StealQueues::new(2, 5);
        // Worker 0 owns batches 0, 2, 4 in order; worker 1 owns 1, 3.
        assert_eq!(q.pop(0), Some((0, false)));
        assert_eq!(q.pop(1), Some((1, false)));
        assert_eq!(q.pop(0), Some((2, false)));
        assert_eq!(q.pop(1), Some((3, false)));
        assert_eq!(q.pop(0), Some((4, false)));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn idle_worker_steals_from_the_back() {
        let q = StealQueues::new(3, 4);
        // Worker 2 owns only batch 2; after that it steals.
        assert_eq!(q.pop(2), Some((2, false)));
        // The victim scan starts at worker 0 (2+1 ≡ 0 mod 3) on every pop,
        // and stealing takes the *back*: worker 0's deque [0, 3] yields 3
        // then 0, only then does the scan reach worker 1's [1].
        assert_eq!(q.pop(2), Some((3, true)));
        assert_eq!(q.pop(2), Some((0, true)));
        assert_eq!(q.pop(2), Some((1, true)));
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn every_batch_surfaces_exactly_once_under_contention() {
        let workers = 4;
        let batches = 257;
        let q = StealQueues::new(workers, batches);
        let mut popped: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some((b, _)) = q.pop(w) {
                            got.push(b);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                popped.push(h.join().expect("worker must not panic"));
            }
        });
        let all: Vec<usize> = popped.into_iter().flatten().collect();
        assert_eq!(all.len(), batches);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), batches);
    }

    #[test]
    fn pop_recovers_from_a_poisoned_queue() {
        let q = std::sync::Arc::new(StealQueues::new(2, 4));
        let q2 = std::sync::Arc::clone(&q);
        // Poison worker 0's deque: panic while holding its lock.
        std::thread::spawn(move || {
            let _guard = q2.queues[0].lock();
            panic!("poison worker 0's deque");
        })
        .join()
        .unwrap_err();

        // The critical sections are single VecDeque operations, so the
        // poisoned deque is structurally intact: owner pops and steals
        // keep flowing through the recovery path.
        assert_eq!(q.pop(1), Some((1, false)));
        assert_eq!(q.pop(1), Some((3, false)));
        assert_eq!(q.pop(1), Some((2, true)), "steal from the poisoned deque");
        assert_eq!(
            q.pop(0),
            Some((0, false)),
            "owner pop of the poisoned deque"
        );
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn single_worker_degenerates_to_a_fifo() {
        let q = StealQueues::new(1, 3);
        assert_eq!(q.pop(0), Some((0, false)));
        assert_eq!(q.pop(0), Some((1, false)));
        assert_eq!(q.pop(0), Some((2, false)));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn scheduler_stats_sum_steals() {
        let stats = SchedulerStats {
            batches: 10,
            levels: 2,
            workers: vec![
                WorkerSchedStats {
                    batches: 6,
                    steals: 1,
                },
                WorkerSchedStats {
                    batches: 4,
                    steals: 2,
                },
            ],
        };
        assert_eq!(stats.steals(), 3);
    }
}
