//! `ORDER BY` clause simplification — the paper's §1 motivating
//! application of order dependencies in query optimization.
//!
//! A sort key is redundant when the keys kept before it already determine
//! its order: given `income → bracket` and `income ↔ tax`, the clause
//! `ORDER BY income, bracket, tax` reduces to `ORDER BY income`.
//!
//! Two simplifiers are provided:
//!
//! * [`simplify_with_data`] — *instance-backed*: a key is dropped when the
//!   kept prefix provably orders it **on this instance** (one sorted scan
//!   per key). This is the strongest rewrite but only sound for the data
//!   at hand.
//! * [`simplify_with_result`] — *dependency-backed*: uses only a
//!   [`DiscoveryResult`] (constants, equivalence classes, ODs), so the
//!   rewrite is sound for any instance satisfying those dependencies —
//!   what a real optimizer with a dependency catalogue would do.
//!
//! Both return the kept keys plus a [`DropReason`] per removed key, and
//! both are conservative: a key is only dropped with a justification.

use crate::check::check_od;
use crate::deps::AttrList;
use crate::results::DiscoveryResult;
use ocdd_relation::{ColumnId, Relation};

/// Why a sort key was removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// The column is constant.
    Constant,
    /// The kept prefix orders the column (witnessed on the instance).
    OrderedByPrefix {
        /// The prefix of kept keys that orders the dropped key.
        prefix: Vec<ColumnId>,
    },
    /// The column is order equivalent to an earlier kept key.
    EquivalentTo {
        /// The earlier kept key.
        kept: ColumnId,
    },
    /// A discovered OD `lhs → [key]` applies: `lhs` is a prefix of the
    /// kept keys.
    ByDiscoveredOd {
        /// The OD's left-hand side.
        lhs: Vec<ColumnId>,
    },
}

/// Result of a clause simplification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplifiedOrderBy {
    /// Kept sort keys, in clause order.
    pub kept: Vec<ColumnId>,
    /// Removed keys with their justification.
    pub dropped: Vec<(ColumnId, DropReason)>,
}

impl SimplifiedOrderBy {
    /// Render the simplified clause with column names.
    pub fn display(&self, rel: &Relation) -> String {
        let names: Vec<&str> = self
            .kept
            .iter()
            .map(|&c| rel.meta(c).name.as_str())
            .collect();
        format!("ORDER BY {}", names.join(", "))
    }
}

/// Instance-backed simplification: drop key `K` when the kept prefix `P`
/// satisfies `P → [K]` on `rel` (or `K` is constant).
pub fn simplify_with_data(rel: &Relation, keys: &[ColumnId]) -> SimplifiedOrderBy {
    let mut kept: Vec<ColumnId> = Vec::new();
    let mut dropped = Vec::new();
    for &key in keys {
        if rel.meta(key).is_constant() {
            dropped.push((key, DropReason::Constant));
            continue;
        }
        let prefix = AttrList::from_slice(&kept);
        if !kept.is_empty() && check_od(rel, &prefix, &AttrList::single(key)).is_valid() {
            dropped.push((
                key,
                DropReason::OrderedByPrefix {
                    prefix: kept.clone(),
                },
            ));
        } else {
            kept.push(key);
        }
    }
    SimplifiedOrderBy { kept, dropped }
}

/// Dependency-backed simplification from a [`DiscoveryResult`].
///
/// Sound rewrites used, in order of preference:
/// 1. `key` is a recorded constant;
/// 2. `key` is order equivalent to an already-kept key (Replace theorem);
/// 3. a discovered OD `U → [key']` applies, where `key'` is `key`'s class
///    representative and `U` (over representatives) is a *prefix* of the
///    kept keys — prefix ODs extend to longer sort prefixes (`U → V`
///    implies `UW → V` by Prefix/Transitivity).
pub fn simplify_with_result(result: &DiscoveryResult, keys: &[ColumnId]) -> SimplifiedOrderBy {
    let rep = |col: ColumnId| -> ColumnId {
        for class in &result.equivalence_classes {
            if class.contains(&col) {
                return class[0];
            }
        }
        col
    };

    let mut kept: Vec<ColumnId> = Vec::new();
    let mut dropped = Vec::new();
    'keys: for &key in keys {
        if result.constants.contains(&key) {
            dropped.push((key, DropReason::Constant));
            continue;
        }
        // Equivalent to an earlier kept key?
        for &k in &kept {
            if rep(k) == rep(key) {
                dropped.push((key, DropReason::EquivalentTo { kept: k }));
                continue 'keys;
            }
        }
        // Discovered OD whose LHS is a prefix of the kept keys (over
        // representatives)?
        let kept_reps: Vec<ColumnId> = kept.iter().map(|&k| rep(k)).collect();
        let key_rep = rep(key);
        for od in &result.ods {
            let matches_rhs = od.rhs.as_slice() == [key_rep];
            let lhs = od.lhs.as_slice();
            let is_prefix = lhs.len() <= kept_reps.len() && kept_reps[..lhs.len()] == *lhs;
            if matches_rhs && is_prefix {
                dropped.push((key, DropReason::ByDiscoveredOd { lhs: lhs.to_vec() }));
                continue 'keys;
            }
        }
        kept.push(key);
    }
    SimplifiedOrderBy { kept, dropped }
}

/// Direction-aware simplification for clauses mixing `ASC` and `DESC`
/// keys (e.g. `ORDER BY ship_date ASC, priority DESC`), using the
/// bidirectional checker: a key is dropped when the kept *marked* prefix
/// orders it on the instance, or when its column is constant.
pub fn simplify_marked_with_data(
    rel: &Relation,
    keys: &[crate::bidirectional::Mark],
) -> (
    Vec<crate::bidirectional::Mark>,
    Vec<(crate::bidirectional::Mark, DropReason)>,
) {
    use crate::bidirectional::{check_bidi_od, MarkedList};
    let mut kept: Vec<crate::bidirectional::Mark> = Vec::new();
    let mut dropped = Vec::new();
    for &key in keys {
        if rel.meta(key.column).is_constant() {
            dropped.push((key, DropReason::Constant));
            continue;
        }
        let prefix = MarkedList::from_marks(kept.clone());
        if !kept.is_empty() && check_bidi_od(rel, &prefix, &MarkedList::single(key)).is_valid() {
            dropped.push((
                key,
                DropReason::OrderedByPrefix {
                    prefix: kept.iter().map(|m| m.column).collect(),
                },
            ));
        } else {
            kept.push(key);
        }
    }
    (kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{discover, DiscoveryConfig};
    use ocdd_relation::sort::sort_index_by;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn tax() -> Relation {
        rel(&[
            ("income", &[35, 40, 40, 55, 60, 80]),
            ("savings", &[3, 4, 3, 6, 6, 10]),
            ("bracket", &[1, 1, 1, 2, 2, 3]),
            ("tax", &[5, 6, 6, 8, 9, 14]),
        ])
    }

    #[test]
    fn data_backed_drops_determined_keys() {
        let r = tax();
        // ORDER BY income, bracket, tax -> ORDER BY income.
        let simplified = simplify_with_data(&r, &[0, 2, 3]);
        assert_eq!(simplified.kept, vec![0]);
        assert_eq!(simplified.dropped.len(), 2);
        assert!(matches!(
            simplified.dropped[0].1,
            DropReason::OrderedByPrefix { .. }
        ));
    }

    #[test]
    fn data_backed_keeps_independent_keys() {
        let r = tax();
        // savings is not ordered by income (split at 40).
        let simplified = simplify_with_data(&r, &[0, 1]);
        assert_eq!(simplified.kept, vec![0, 1]);
        assert!(simplified.dropped.is_empty());
    }

    #[test]
    fn constant_keys_always_dropped() {
        let r = rel(&[("a", &[1, 2, 3]), ("k", &[9, 9, 9])]);
        let simplified = simplify_with_data(&r, &[1, 0]);
        assert_eq!(simplified.kept, vec![0]);
        assert_eq!(simplified.dropped, vec![(1, DropReason::Constant)]);
        // Dependency-backed agrees.
        let result = discover(&r, &DiscoveryConfig::default());
        let s2 = simplify_with_result(&result, &[1, 0]);
        assert_eq!(s2.kept, vec![0]);
    }

    #[test]
    fn result_backed_uses_equivalences_and_ods() {
        let r = tax();
        let result = discover(&r, &DiscoveryConfig::default());
        // income <-> tax, income -> bracket.
        let simplified = simplify_with_result(&result, &[0, 2, 3]);
        assert_eq!(simplified.kept, vec![0]);
        assert!(simplified
            .dropped
            .iter()
            .any(|(c, r)| *c == 2 && matches!(r, DropReason::ByDiscoveredOd { .. })));
        assert!(simplified
            .dropped
            .iter()
            .any(|(c, r)| *c == 3 && matches!(r, DropReason::EquivalentTo { kept: 0 })));
    }

    #[test]
    fn rewrites_preserve_sort_order() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Relation::from_columns(
                (0..4)
                    .map(|c| {
                        (
                            format!("c{c}"),
                            (0..15)
                                .map(|_| Value::Int(rng.random_range(0..3)))
                                .collect(),
                        )
                    })
                    .collect::<Vec<(String, Vec<Value>)>>(),
            )
            .unwrap();
            let keys = [0usize, 1, 2, 3];
            for simplified in [
                simplify_with_data(&r, &keys),
                simplify_with_result(&discover(&r, &DiscoveryConfig::default()), &keys),
            ] {
                let full = sort_index_by(&r, &keys);
                let reduced = sort_index_by(&r, &simplified.kept);
                // The reduced clause must induce the same total preorder:
                // check pairwise order agreement along the full index.
                for w in full.windows(2) {
                    use ocdd_relation::sort::cmp_rows;
                    let a = w[0] as usize;
                    let b = w[1] as usize;
                    // If the full clause strictly orders a before b, the
                    // reduced clause must not order b strictly before a.
                    assert_ne!(
                        cmp_rows(&r, &simplified.kept, a, b),
                        std::cmp::Ordering::Greater,
                        "seed {seed}: rewrite broke the order (kept {:?})",
                        simplified.kept
                    );
                }
                let _ = reduced;
            }
        }
    }

    #[test]
    fn display_renders_clause() {
        let r = tax();
        let s = simplify_with_data(&r, &[0, 2]);
        assert_eq!(s.display(&r), "ORDER BY income");
    }

    #[test]
    fn marked_simplifier_handles_desc_keys() {
        use crate::bidirectional::Mark;
        // score descending orders rank ascending: ORDER BY score DESC, rank
        // reduces to ORDER BY score DESC.
        let r = rel(&[("score", &[90, 85, 85, 70, 60]), ("rank", &[1, 2, 2, 4, 5])]);
        let keys = [Mark::desc(0), Mark::asc(1)];
        let (kept, dropped) = simplify_marked_with_data(&r, &keys);
        assert_eq!(kept, vec![Mark::desc(0)]);
        assert_eq!(dropped.len(), 1);
        // The ascending clause cannot drop anything (swap direction).
        let keys = [Mark::asc(0), Mark::asc(1)];
        let (kept, _) = simplify_marked_with_data(&r, &keys);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn marked_simplifier_agrees_with_plain_on_all_asc() {
        use crate::bidirectional::Mark;
        let r = tax();
        let plain = simplify_with_data(&r, &[0, 2, 3]);
        let (kept, _) = simplify_marked_with_data(&r, &[Mark::asc(0), Mark::asc(2), Mark::asc(3)]);
        assert_eq!(
            plain.kept,
            kept.iter().map(|m| m.column).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_clause_is_noop() {
        let r = tax();
        let s = simplify_with_data(&r, &[]);
        assert!(s.kept.is_empty() && s.dropped.is_empty());
    }
}
