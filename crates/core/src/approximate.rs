//! Approximate order dependencies: dependencies that hold after removing a
//! bounded fraction of rows.
//!
//! The FD literature the paper builds on (§6) uses the `g3` error — the
//! minimum fraction of tuples whose removal makes the dependency exact.
//! Both components of an OD admit an exact, efficient `g3`:
//!
//! * **Order compatibility** (`X ~ Y`, swap violations): after sorting the
//!   rows by `(X, Y)`, a subset of rows is swap-free **iff** its `Y`
//!   projection is non-decreasing in that order (ties on `X` are sorted by
//!   `Y`, so they can never decrease). The largest such subset is the
//!   longest non-decreasing subsequence, computable in `O(m log m)` by
//!   patience sorting.
//! * **Functional dependency** (`X → Y` as sets, split violations): within
//!   each `X`-equivalence class, keep the most frequent `Y`-projection;
//!   everything else must go.
//!
//! An approximate OD holds at tolerance `ε` when both error components are
//! at most `ε·m`. (The exact joint minimum removal is NP-hard in general;
//! reporting the two components separately is the standard practice and an
//! upper bound of at most their sum.)
//!
//! [`discover_approximate`] runs the OCDDISCOVER traversal with the exact
//! validity test replaced by the ε-test. Because an approximate dependency
//! is *not* downward closed (a superset list can repair a violation by
//! reordering ties), the Theorem 3.7 pruning becomes a heuristic here —
//! the trade-off every approximate levelwise discoverer makes; the
//! documentation and tests pin the behaviour down.

use crate::config::DiscoveryConfig;
use crate::deps::{AttrList, Ocd, Od};
use crate::runtime::{Budget, TerminationReason};
use ocdd_relation::sort::{cmp_rows, sort_index_by};
use ocdd_relation::Relation;
use std::collections::HashMap;
use std::collections::HashSet;

/// Error decomposition of an OD candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdError {
    /// Minimum rows to remove to eliminate every swap (order
    /// compatibility component), exact.
    pub swap_removals: usize,
    /// Minimum rows to remove to eliminate every split (FD component),
    /// exact.
    pub split_removals: usize,
    /// Total rows in the instance.
    pub rows: usize,
}

impl OdError {
    /// The `g3`-style error of the order-compatibility component.
    pub fn swap_error(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.swap_removals as f64 / self.rows as f64
        }
    }

    /// The `g3`-style error of the FD component.
    pub fn split_error(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.split_removals as f64 / self.rows as f64
        }
    }

    /// Whether the OD holds approximately at tolerance `epsilon`
    /// (both components within budget).
    pub fn holds_at(&self, epsilon: f64) -> bool {
        self.swap_error() <= epsilon && self.split_error() <= epsilon
    }

    /// Exact dependency (no removals needed).
    pub fn is_exact(&self) -> bool {
        self.swap_removals == 0 && self.split_removals == 0
    }
}

/// Length of the longest non-decreasing subsequence (patience sorting,
/// `O(m log m)`).
fn longest_nondecreasing_subsequence(seq: &[u64]) -> usize {
    // tails[k] = smallest possible tail of a non-decreasing subsequence of
    // length k+1.
    let mut tails: Vec<u64> = Vec::new();
    for &v in seq {
        // First tail strictly greater than v gets replaced (non-decreasing,
        // so equal tails extend).
        let pos = tails.partition_point(|&t| t <= v);
        if pos == tails.len() {
            tails.push(v);
        } else {
            tails[pos] = v;
        }
    }
    tails.len()
}

/// Rank of each row's `cols` projection as a single `u64` (dense rank over
/// the lexicographic order of projections).
fn projection_ranks(rel: &Relation, cols: &AttrList) -> Vec<u64> {
    let index = sort_index_by(rel, cols.as_slice());
    let mut ranks = vec![0u64; rel.num_rows()];
    let mut rank = 0u64;
    for (pos, &row) in index.iter().enumerate() {
        if pos > 0
            && cmp_rows(rel, cols.as_slice(), index[pos - 1] as usize, row as usize)
                != std::cmp::Ordering::Equal
        {
            rank += 1;
        }
        ranks[row as usize] = rank;
    }
    ranks
}

/// Compute the exact error decomposition of the OD `lhs → rhs`.
pub fn od_error(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> OdError {
    let m = rel.num_rows();
    if m == 0 {
        return OdError {
            swap_removals: 0,
            split_removals: 0,
            rows: 0,
        };
    }
    let lhs_rank = projection_ranks(rel, lhs);
    let rhs_rank = projection_ranks(rel, rhs);

    // Swap component: sort by (lhs, rhs), take LNDS of the rhs ranks.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&r| (lhs_rank[r as usize], rhs_rank[r as usize]));
    let rhs_seq: Vec<u64> = order.iter().map(|&r| rhs_rank[r as usize]).collect();
    let swap_removals = m - longest_nondecreasing_subsequence(&rhs_seq);

    // Split component: per lhs class, keep the plurality rhs projection.
    let mut class_counts: HashMap<(u64, u64), usize> = HashMap::new();
    let mut class_totals: HashMap<u64, usize> = HashMap::new();
    for r in 0..m {
        *class_counts.entry((lhs_rank[r], rhs_rank[r])).or_insert(0) += 1;
        *class_totals.entry(lhs_rank[r]).or_insert(0) += 1;
    }
    let mut best: HashMap<u64, usize> = HashMap::new();
    for (&(l, _), &count) in &class_counts {
        let entry = best.entry(l).or_insert(0);
        *entry = (*entry).max(count);
    }
    let split_removals = class_totals.iter().map(|(l, &total)| total - best[l]).sum();

    OdError {
        swap_removals,
        split_removals,
        rows: m,
    }
}

/// Error of the OCD `x ~ y` (swap component of `XY → YX`; the split
/// component is structurally zero there, see Theorem 4.1 discussion).
pub fn ocd_error(rel: &Relation, x: &AttrList, y: &AttrList) -> OdError {
    od_error(rel, &x.concat(y), &y.concat(x))
}

/// The rows whose removal makes `lhs → rhs` exact: the complement of the
/// longest non-decreasing subsequence (swap side) plus every minority row
/// inside an LHS class that disagrees with the class plurality (split
/// side). Row ids are returned sorted and deduplicated.
///
/// This is the "repair set" a data-cleaning tool would surface: the
/// witnesses are exact for each component (see [`od_error`]), and removing
/// them always yields an instance on which the OD holds.
pub fn removal_witnesses(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> Vec<u32> {
    let m = rel.num_rows();
    if m == 0 {
        return Vec::new();
    }
    let lhs_rank = projection_ranks(rel, lhs);
    let rhs_rank = projection_ranks(rel, rhs);

    let mut witnesses: Vec<u32> = Vec::new();

    // Swap side: patience sorting with predecessor links recovers one
    // longest non-decreasing subsequence; everything outside it goes.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&r| (lhs_rank[r as usize], rhs_rank[r as usize]));
    let seq: Vec<u64> = order.iter().map(|&r| rhs_rank[r as usize]).collect();
    let mut tails: Vec<usize> = Vec::new(); // positions into seq
    let mut prev: Vec<Option<usize>> = vec![None; seq.len()];
    for (pos, &v) in seq.iter().enumerate() {
        let insert = tails.partition_point(|&t| seq[t] <= v);
        if insert > 0 {
            prev[pos] = Some(tails[insert - 1]);
        }
        if insert == tails.len() {
            tails.push(pos);
        } else {
            tails[insert] = pos;
        }
    }
    let mut keep = vec![false; seq.len()];
    let mut cursor = tails.last().copied();
    while let Some(p) = cursor {
        keep[p] = true;
        cursor = prev[p];
    }
    for (pos, &kept) in keep.iter().enumerate() {
        if !kept {
            witnesses.push(order[pos]);
        }
    }

    // Split side: rows disagreeing with their LHS class plurality.
    let mut counts: HashMap<(u64, u64), usize> = HashMap::new();
    for r in 0..m {
        *counts.entry((lhs_rank[r], rhs_rank[r])).or_insert(0) += 1;
    }
    let mut best: HashMap<u64, (usize, u64)> = HashMap::new();
    for (&(l, y), &count) in &counts {
        let entry = best.entry(l).or_insert((0, 0));
        // Deterministic tie-break: prefer the smaller rhs rank.
        if count > entry.0 || (count == entry.0 && y < entry.1) {
            *entry = (count, y);
        }
    }
    for r in 0..m {
        if best[&lhs_rank[r]].1 != rhs_rank[r] {
            witnesses.push(r as u32);
        }
    }

    witnesses.sort_unstable();
    witnesses.dedup();
    witnesses
}

/// An OCD together with its measured error.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximateOcd {
    /// The dependency.
    pub ocd: Ocd,
    /// Swap error in `[0, 1]`.
    pub error: f64,
}

/// Output of an approximate discovery run.
#[derive(Debug, Clone, Default)]
pub struct ApproximateResult {
    /// OCDs holding at the tolerance, with their measured errors.
    pub ocds: Vec<ApproximateOcd>,
    /// ODs holding at the tolerance.
    pub ods: Vec<Od>,
    /// Candidate checks performed.
    pub checks: u64,
    /// Why the run stopped; anything but
    /// [`TerminationReason::Complete`] means partial results.
    pub termination: TerminationReason,
}

impl ApproximateResult {
    /// True when the search explored the whole candidate tree.
    pub fn complete(&self) -> bool {
        self.termination.is_complete()
    }
}

/// OCDDISCOVER with the ε-tolerant validity test. `epsilon` is the allowed
/// row-removal fraction per component.
///
/// Pruning caveat: levelwise pruning of failed candidates is heuristic for
/// approximate dependencies (see module docs); with `epsilon = 0` the run
/// is exact and equivalent to [`crate::discover`]'s candidate tree.
pub fn discover_approximate(
    rel: &Relation,
    config: &DiscoveryConfig,
    epsilon: f64,
) -> ApproximateResult {
    let start = crate::runtime::now();
    // Same amortized budget as the exhaustive search; see
    // `discover_bidirectional` for the polling contract.
    let budget = Budget::new(config, start, 0);
    let mut level_capped = false;

    // Approximate runs skip column reduction: near-constant columns are
    // precisely what ε-tolerance is for.
    let universe: Vec<usize> = (0..rel.num_columns()).collect();
    let mut out = ApproximateResult::default();

    let mut level: Vec<(AttrList, AttrList)> = Vec::new();
    for (i, &a) in universe.iter().enumerate() {
        for &b in &universe[i + 1..] {
            level.push((AttrList::single(a), AttrList::single(b)));
        }
    }

    let mut level_no = 2usize;
    'outer: while !level.is_empty() {
        if config.max_level.is_some_and(|max| level_no > max) {
            level_capped = true;
            break;
        }
        let mut next = Vec::new();
        for (x, y) in &level {
            if !budget.probe() {
                break 'outer;
            }
            let mut spent = 1u64;
            let err = ocd_error(rel, x, y);
            if err.swap_error() > epsilon {
                budget.spend(spent);
                continue;
            }
            out.ocds.push(ApproximateOcd {
                ocd: Ocd::new(x.clone(), y.clone()),
                error: err.swap_error(),
            });

            let unused: Vec<usize> = universe
                .iter()
                .copied()
                .filter(|&a| !x.contains(a) && !y.contains(a))
                .collect();
            spent += 1;
            if od_error(rel, x, y).holds_at(epsilon) {
                out.ods.push(Od::new(x.clone(), y.clone()));
            } else {
                for &a in &unused {
                    next.push((x.with_appended(a), y.clone()));
                }
            }
            spent += 1;
            if od_error(rel, y, x).holds_at(epsilon) {
                out.ods.push(Od::new(y.clone(), x.clone()));
            } else {
                for &a in &unused {
                    next.push((x.clone(), y.with_appended(a)));
                }
            }
            budget.spend(spent);
        }
        let mut seen: HashSet<(AttrList, AttrList)> = HashSet::with_capacity(next.len());
        next.retain(|c| seen.insert(c.clone()));
        level = next;
        level_no += 1;
    }

    out.checks = budget.checks();
    out.termination = match budget.cause() {
        Some(cause) => cause.into(),
        None if level_capped => TerminationReason::LevelCap,
        None => TerminationReason::Complete,
    };
    out.ocds.sort_by(|a, b| a.ocd.cmp(&b.ocd));
    out.ods.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn lnds_basics() {
        assert_eq!(longest_nondecreasing_subsequence(&[]), 0);
        assert_eq!(longest_nondecreasing_subsequence(&[1, 2, 2, 3]), 4);
        assert_eq!(longest_nondecreasing_subsequence(&[3, 2, 1]), 1);
        assert_eq!(longest_nondecreasing_subsequence(&[1, 3, 2, 4]), 3);
        assert_eq!(longest_nondecreasing_subsequence(&[2, 2, 1, 1, 2]), 3);
    }

    #[test]
    fn exact_dependency_has_zero_error() {
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 1, 2, 2])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert!(err.is_exact());
        assert_eq!(err.swap_error(), 0.0);
    }

    #[test]
    fn single_swap_costs_one_row() {
        // One outlier: removing it makes a -> b exact.
        let r = rel(&[("a", &[1, 2, 3, 4, 5]), ("b", &[1, 2, 3, 9, 5])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.swap_removals, 1);
        assert_eq!(err.split_removals, 0);
        assert!(err.holds_at(0.2));
        assert!(!err.holds_at(0.1));
    }

    #[test]
    fn split_error_counts_minority_rows() {
        // a=1 twice with b 5 and 6: one row must go.
        let r = rel(&[("a", &[1, 1, 2]), ("b", &[5, 6, 7])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.split_removals, 1);
    }

    #[test]
    fn error_zero_iff_checker_valid() {
        use crate::check::check_od;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let vals = |rng: &mut StdRng| -> Vec<i64> {
                (0..12).map(|_| rng.random_range(0..4)).collect()
            };
            let (va, vb) = (vals(&mut rng), vals(&mut rng));
            let r = rel(&[("a", &va), ("b", &vb)]);
            for (x, y) in [(l(&[0]), l(&[1])), (l(&[1]), l(&[0]))] {
                let err = od_error(&r, &x, &y);
                assert_eq!(
                    err.is_exact(),
                    check_od(&r, &x, &y).is_valid(),
                    "seed {seed}: error {err:?} vs checker on {x} -> {y}"
                );
            }
        }
    }

    #[test]
    fn swap_error_matches_brute_force_minimum() {
        // Brute-force minimal removal for the OCD on tiny relations: try
        // all subsets, find the largest swap-free one.
        use crate::check::check_od_pairwise;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = 7usize;
            let va: Vec<i64> = (0..rows).map(|_| rng.random_range(0..3)).collect();
            let vb: Vec<i64> = (0..rows).map(|_| rng.random_range(0..3)).collect();
            let r = rel(&[("a", &va), ("b", &vb)]);
            let err = ocd_error(&r, &l(&[0]), &l(&[1]));

            let mut best_keep = 0usize;
            for mask in 0u32..(1 << rows) {
                let keep: Vec<usize> = (0..rows).filter(|i| mask & (1 << i) != 0).collect();
                if keep.len() <= best_keep {
                    continue;
                }
                let sub = Relation::from_columns(vec![
                    (
                        "a".to_string(),
                        keep.iter().map(|&i| Value::Int(va[i])).collect(),
                    ),
                    (
                        "b".to_string(),
                        keep.iter().map(|&i| Value::Int(vb[i])).collect(),
                    ),
                ])
                .unwrap();
                let xy = l(&[0]).concat(&l(&[1]));
                let yx = l(&[1]).concat(&l(&[0]));
                if check_od_pairwise(&sub, &xy, &yx) && check_od_pairwise(&sub, &yx, &xy) {
                    best_keep = keep.len();
                }
            }
            assert_eq!(err.swap_removals, rows - best_keep, "seed {seed}");
        }
    }

    #[test]
    fn approximate_discovery_tolerates_outliers() {
        // 30 clean monotone rows + 1 outlier: exact discovery drops the
        // dependency, ε = 0.05 keeps it.
        let mut va: Vec<i64> = (0..30).collect();
        let mut vb: Vec<i64> = (0..30).map(|i| i * 2).collect();
        va.push(31);
        vb.push(0); // outlier swap
        let r = rel(&[("a", &va), ("b", &vb)]);

        let exact = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
        assert!(exact.ods.is_empty());
        let approx = discover_approximate(&r, &DiscoveryConfig::default(), 0.05);
        assert_eq!(approx.ods.len(), 2, "a -> b and b -> a at tolerance");
        assert!(approx.ocds[0].error > 0.0);
    }

    #[test]
    fn epsilon_zero_matches_exact_discovery_on_ocds() {
        use crate::{discover, DiscoveryConfig};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cols: Vec<(String, Vec<Value>)> = (0..3)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..14)
                            .map(|_| Value::Int(rng.random_range(0..3)))
                            .collect(),
                    )
                })
                .collect();
            let r = Relation::from_columns(cols).unwrap();
            let exact = discover(
                &r,
                &DiscoveryConfig {
                    column_reduction: false,
                    ..DiscoveryConfig::default()
                },
            );
            let approx = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
            let exact_set: std::collections::HashSet<Ocd> =
                exact.ocds.iter().map(Ocd::canonical).collect();
            let approx_set: std::collections::HashSet<Ocd> =
                approx.ocds.iter().map(|a| a.ocd.canonical()).collect();
            assert_eq!(exact_set, approx_set, "seed {seed}");
        }
    }

    #[test]
    fn witnesses_repair_the_dependency() {
        use crate::check::check_od;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let va: Vec<i64> = (0..12).map(|_| rng.random_range(0..4)).collect();
            let vb: Vec<i64> = (0..12).map(|_| rng.random_range(0..4)).collect();
            let r = rel(&[("a", &va), ("b", &vb)]);
            let witnesses = removal_witnesses(&r, &l(&[0]), &l(&[1]));
            // Remove the witnesses and recheck: the OD must now hold.
            let keep: Vec<usize> = (0..12)
                .filter(|&i| !witnesses.contains(&(i as u32)))
                .collect();
            let repaired = rel(&[
                ("a", &keep.iter().map(|&i| va[i]).collect::<Vec<_>>()),
                ("b", &keep.iter().map(|&i| vb[i]).collect::<Vec<_>>()),
            ]);
            assert!(
                check_od(&repaired, &l(&[0]), &l(&[1])).is_valid(),
                "seed {seed}: witnesses {witnesses:?} did not repair a -> b"
            );
        }
    }

    #[test]
    fn witnesses_empty_for_exact_dependency() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 2, 2])]);
        assert!(removal_witnesses(&r, &l(&[0]), &l(&[1])).is_empty());
    }

    #[test]
    fn witness_count_matches_error_components_for_pure_cases() {
        // Pure swap case, no splits: witness count equals swap_removals.
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 2, 9, 4])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.split_removals, 0);
        let w = removal_witnesses(&r, &l(&[0]), &l(&[1]));
        assert_eq!(w.len(), err.swap_removals);
    }

    #[test]
    fn budget_and_cancellation_yield_typed_partial_results() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[2, 1, 4, 3, 6, 5]),
            ("c", &[6, 5, 4, 3, 2, 1]),
        ]);
        let limited = discover_approximate(
            &r,
            &DiscoveryConfig {
                max_checks: Some(2),
                ..DiscoveryConfig::default()
            },
            0.5,
        );
        assert!(!limited.complete());
        assert_eq!(limited.termination, TerminationReason::CheckBudget);

        use crate::runtime::RunController;
        let controller = RunController::new();
        controller.cancel();
        let cancelled = discover_approximate(
            &r,
            &DiscoveryConfig {
                controller: Some(controller),
                ..DiscoveryConfig::default()
            },
            0.5,
        );
        assert_eq!(cancelled.termination, TerminationReason::Cancelled);
        assert!(cancelled.ocds.is_empty(), "no candidate was processed");
    }

    #[test]
    fn empty_relation_is_trivially_exact() {
        let r = rel(&[("a", &[]), ("b", &[])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert!(err.is_exact());
        assert!(err.holds_at(0.0));
    }
}
