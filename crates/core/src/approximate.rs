//! Approximate order dependencies: dependencies that hold after removing a
//! bounded fraction of rows — discovered sample-first with full-data
//! escalation.
//!
//! # Error measure
//!
//! The FD literature the paper builds on (§6) uses the `g3` error — the
//! minimum fraction of tuples whose removal makes the dependency exact.
//! Both components of an OD admit an exact, efficient `g3`:
//!
//! * **Order compatibility** (`X ~ Y`, swap violations): after sorting the
//!   rows by `(X, Y)`, a subset of rows is swap-free **iff** its `Y`
//!   projection is non-decreasing in that order (ties on `X` are sorted by
//!   `Y`, so they can never decrease). The largest such subset is the
//!   longest non-decreasing subsequence, computable in `O(m log m)` by
//!   patience sorting.
//! * **Functional dependency** (`X → Y` as sets, split violations): within
//!   each `X`-equivalence class, keep the most frequent `Y`-projection;
//!   everything else must go.
//!
//! An approximate OD holds at tolerance `ε` when both error components are
//! at most `ε·m`. (The exact joint minimum removal is NP-hard in general;
//! reporting the two components separately is the standard practice and an
//! upper bound of at most their sum.)
//!
//! # The sample-first pipeline
//!
//! [`discover_approximate_with`] runs the OCDDISCOVER traversal against a
//! deterministic, seeded row sample ([`ocdd_relation::sample`], DESIGN.md
//! §14) instead of the full relation. Per candidate it computes the
//! swap/split error *estimate* on the sample, widens it by a
//! Hoeffding-style confidence half-width ([`hoeffding_half_width`]) and
//! triages ([`triage`]):
//!
//! * **Accept** — estimate + half-width ≤ ε: emitted on the sample's
//!   evidence alone (heuristic: the full-data error could exceed ε with
//!   probability ≤ 1 − confidence per component).
//! * **Reject** — estimate − half-width > ε: the subtree is pruned
//!   exactly as in the exact search. Theorem 3.7 pruning is *sound* here
//!   in the same heuristic sense the fixed-threshold checker always had
//!   (approximate ODs are not downward closed), and the rejection itself
//!   errs on the side of pruning only clearly-bad candidates.
//! * **Borderline** — the interval straddles ε: the candidate is
//!   *escalated* to a full-data check, batched onto the work-stealing
//!   scheduler with the blockwise scan kernels and epoch prefix caches
//!   (`crate::search::run_escalations`). A full-data-exact OCD lets the
//!   OD directions reuse the fused split-only `check_od_after_ocd` scan
//!   instead of a fresh error decomposition.
//!
//! With `sample_rows >= rel.num_rows()` (or `None`) the sample is the
//! relation itself, the half-width is zero, nothing is ever borderline,
//! and the pipeline degenerates *byte-identically* to the fixed-threshold
//! full-data checker of earlier revisions — [`discover_approximate`] is
//! exactly that degenerate call. With `epsilon = 0` the run is exact and
//! equivalent to [`crate::discover`]'s candidate tree.
//!
//! [`ApproxStats`] reports the triage outcome counts and a row-scan cost
//! model (see [`ERR_PASSES`]) so benchmarks can quantify full-data checks
//! saved.

use crate::config::DiscoveryConfig;
use crate::deps::{AttrList, Ocd, Od};
use crate::runtime::{Budget, TerminationReason};
use crate::search::{EscalationJob, EscalationKind, EscalationVerdict};
use ocdd_relation::scan::{note_scan, select_kernel, BlockEq, ScanKernel, BLOCK_PAIRS};
use ocdd_relation::sort::{cmp_rows, sort_index_by};
use ocdd_relation::{manifest_hash, Relation, Sample, SampleSpec, SampleStrategy};
use std::collections::{BTreeMap, BTreeSet};

/// Row passes one error decomposition costs: two projection-rank scans,
/// the `(lhs, rhs)` sort and the LNDS — the documented cost model behind
/// [`ApproxStats::sample_row_scans`] / [`ApproxStats::full_row_scans`]
/// (one fused checker scan costs one pass).
pub const ERR_PASSES: u64 = 4;

/// Error decomposition of an OD candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdError {
    /// Minimum rows to remove to eliminate every swap (order
    /// compatibility component), exact.
    pub swap_removals: usize,
    /// Minimum rows to remove to eliminate every split (FD component),
    /// exact.
    pub split_removals: usize,
    /// Total rows in the instance.
    pub rows: usize,
}

impl OdError {
    /// The `g3`-style error of the order-compatibility component.
    pub fn swap_error(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.swap_removals as f64 / self.rows as f64
        }
    }

    /// The `g3`-style error of the FD component.
    pub fn split_error(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.split_removals as f64 / self.rows as f64
        }
    }

    /// Whether the OD holds approximately at tolerance `epsilon`
    /// (both components within budget).
    pub fn holds_at(&self, epsilon: f64) -> bool {
        self.swap_error() <= epsilon && self.split_error() <= epsilon
    }

    /// Exact dependency (no removals needed).
    pub fn is_exact(&self) -> bool {
        self.swap_removals == 0 && self.split_removals == 0
    }
}

/// Length of the longest non-decreasing subsequence (patience sorting,
/// `O(m log m)`).
fn longest_nondecreasing_subsequence(seq: &[u64]) -> usize {
    // tails[k] = smallest possible tail of a non-decreasing subsequence of
    // length k+1.
    let mut tails: Vec<u64> = Vec::new();
    // lint: allow(unprobed-loop, patience pass over one estimate's sample sequence, bounded by the sample rows)
    for &v in seq {
        // First tail strictly greater than v gets replaced (non-decreasing,
        // so equal tails extend).
        let pos = tails.partition_point(|&t| t <= v);
        if pos == tails.len() {
            tails.push(v);
        } else if let Some(t) = tails.get_mut(pos) {
            *t = v;
        }
    }
    tails.len()
}

/// Rank lookup by permuted row id; `r` always comes from a permutation of
/// `0..ranks.len()`, so the fallback is unreachable.
#[inline]
fn rank_at(ranks: &[u64], r: u32) -> u64 {
    ranks.get(r as usize).copied().unwrap_or(0)
}

/// Rank of each row's `cols` projection as a single `u64` (dense rank over
/// the lexicographic order of projections).
///
/// The adjacent-equality walk over the sorted index runs on the blockwise
/// [`BlockEq`] kernels ([`select_kernel`] keeps sub-block inputs on the
/// scalar oracle), so the estimate phase shares the PR 6 scan kernels with
/// the exact checkers instead of per-pair [`cmp_rows`] calls.
fn projection_ranks(rel: &Relation, cols: &AttrList) -> Vec<u64> {
    let index = sort_index_by(rel, cols.as_slice());
    projection_ranks_on(rel, cols, &index)
}

/// [`projection_ranks`] over a pre-built sorted index.
fn projection_ranks_on(rel: &Relation, cols: &AttrList, index: &[u32]) -> Vec<u64> {
    let m = index.len();
    let mut ranks = vec![0u64; m];
    if m < 2 {
        return ranks;
    }
    let pairs = m - 1;
    let kernel = select_kernel(pairs);
    note_scan(kernel);
    if kernel == ScanKernel::Scalar {
        return projection_ranks_scalar(rel, cols, index);
    }
    let mut rank = 0u64;
    let mut eq = BlockEq::default();
    let mut start = 0usize;
    // lint: allow(unprobed-loop, blockwise walk over one projection's sample index, bounded by the sample pairs)
    while start < pairs {
        let n = (pairs - start).min(BLOCK_PAIRS);
        let Some(window) = index.get(start..start + n + 1) else {
            break;
        };
        eq.reset(n);
        for &col in cols.as_slice() {
            eq.fold_column(rel, col, window);
            if eq.none() {
                break;
            }
        }
        // A zero mask byte is a rank boundary: the pair's rows differ on
        // some projection column.
        for (j, &e) in eq.mask().iter().take(n).enumerate() {
            rank += u64::from(e == 0);
            if let Some(&row) = window.get(j + 1) {
                if let Some(slot) = ranks.get_mut(row as usize) {
                    *slot = rank;
                }
            }
        }
        start += n;
    }
    ranks
}

/// Scalar oracle for [`projection_ranks_on`]: the per-pair [`cmp_rows`]
/// walk the blockwise path is differentially pinned against.
fn projection_ranks_scalar(rel: &Relation, cols: &AttrList, index: &[u32]) -> Vec<u64> {
    let mut ranks = vec![0u64; index.len()];
    let mut rank = 0u64;
    // lint: allow(unprobed-loop, scalar oracle walks one sample index, bounded by the sample rows)
    for (pos, &row) in index.iter().enumerate() {
        if pos > 0 {
            let prev = rank_at_u32(index, pos - 1);
            if cmp_rows(rel, cols.as_slice(), prev as usize, row as usize)
                != std::cmp::Ordering::Equal
            {
                rank += 1;
            }
        }
        if let Some(slot) = ranks.get_mut(row as usize) {
            *slot = rank;
        }
    }
    ranks
}

/// Index lookup with an unreachable fallback (`pos` stays in bounds by the
/// enumerate loop).
#[inline]
fn rank_at_u32(index: &[u32], pos: usize) -> u32 {
    index.get(pos).copied().unwrap_or(0)
}

/// Compute the exact error decomposition of the OD `lhs → rhs`.
pub fn od_error(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> OdError {
    let m = rel.num_rows();
    if m == 0 {
        return OdError {
            swap_removals: 0,
            split_removals: 0,
            rows: 0,
        };
    }
    let lhs_rank = projection_ranks(rel, lhs);
    let rhs_rank = projection_ranks(rel, rhs);

    // Swap component: sort by (lhs, rhs), take LNDS of the rhs ranks.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&r| (rank_at(&lhs_rank, r), rank_at(&rhs_rank, r)));
    let rhs_seq: Vec<u64> = order.iter().map(|&r| rank_at(&rhs_rank, r)).collect();
    let swap_removals = m - longest_nondecreasing_subsequence(&rhs_seq);

    // Split component: per lhs class, keep the plurality rhs projection.
    // BTreeMap keeps the walk deterministic (and groups the (l, y) pairs
    // by l for the single-pass plurality fold below).
    let mut class_counts: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    // lint: allow(unprobed-loop, one pass over the sample-row rank pairs of a single estimate)
    for (&l, &y) in lhs_rank.iter().zip(rhs_rank.iter()) {
        *class_counts.entry((l, y)).or_insert(0) += 1;
    }
    let mut split_removals = 0usize;
    let mut cur: Option<u64> = None;
    let mut total = 0usize;
    let mut best = 0usize;
    // lint: allow(unprobed-loop, plurality fold over the sample's equivalence classes, bounded by the sample rows)
    for (&(l, _), &count) in &class_counts {
        if cur != Some(l) {
            split_removals += total - best;
            cur = Some(l);
            total = 0;
            best = 0;
        }
        total += count;
        best = best.max(count);
    }
    split_removals += total - best;

    OdError {
        swap_removals,
        split_removals,
        rows: m,
    }
}

/// Error of the OCD `x ~ y` (swap component of `XY → YX`; the split
/// component is structurally zero there, see Theorem 4.1 discussion).
pub fn ocd_error(rel: &Relation, x: &AttrList, y: &AttrList) -> OdError {
    od_error(rel, &x.concat(y), &y.concat(x))
}

/// The rows whose removal makes `lhs → rhs` exact: the complement of the
/// longest non-decreasing subsequence (swap side) plus every minority row
/// inside an LHS class that disagrees with the class plurality (split
/// side). Row ids are returned sorted and deduplicated.
///
/// This is the "repair set" a data-cleaning tool would surface: the
/// witnesses are exact for each component (see [`od_error`]), and removing
/// them always yields an instance on which the OD holds.
pub fn removal_witnesses(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> Vec<u32> {
    let m = rel.num_rows();
    if m == 0 {
        return Vec::new();
    }
    let lhs_rank = projection_ranks(rel, lhs);
    let rhs_rank = projection_ranks(rel, rhs);

    let mut witnesses: Vec<u32> = Vec::new();

    // Swap side: patience sorting with predecessor links recovers one
    // longest non-decreasing subsequence; everything outside it goes.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&r| (rank_at(&lhs_rank, r), rank_at(&rhs_rank, r)));
    let seq: Vec<u64> = order.iter().map(|&r| rank_at(&rhs_rank, r)).collect();
    let mut tails: Vec<usize> = Vec::new(); // positions into seq
    let mut prev: Vec<Option<usize>> = vec![None; seq.len()];
    for (pos, &v) in seq.iter().enumerate() {
        let insert = tails.partition_point(|&t| seq.get(t).copied().unwrap_or(0) <= v);
        if insert > 0 {
            if let (Some(p), Some(&t)) = (prev.get_mut(pos), tails.get(insert - 1)) {
                *p = Some(t);
            }
        }
        if insert == tails.len() {
            tails.push(pos);
        } else if let Some(t) = tails.get_mut(insert) {
            *t = pos;
        }
    }
    let mut keep = vec![false; seq.len()];
    let mut cursor = tails.last().copied();
    while let Some(p) = cursor {
        if let Some(k) = keep.get_mut(p) {
            *k = true;
        }
        cursor = prev.get(p).copied().flatten();
    }
    for (&kept, &row) in keep.iter().zip(order.iter()) {
        if !kept {
            witnesses.push(row);
        }
    }

    // Split side: rows disagreeing with their LHS class plurality.
    let mut counts: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for (&l, &y) in lhs_rank.iter().zip(rhs_rank.iter()) {
        *counts.entry((l, y)).or_insert(0) += 1;
    }
    let mut best: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    for (&(l, y), &count) in &counts {
        let entry = best.entry(l).or_insert((0, 0));
        // Deterministic tie-break: prefer the smaller rhs rank.
        if count > entry.0 || (count == entry.0 && y < entry.1) {
            *entry = (count, y);
        }
    }
    for (r, (&l, &y)) in lhs_rank.iter().zip(rhs_rank.iter()).enumerate() {
        if best.get(&l).is_some_and(|&(_, by)| by != y) {
            witnesses.push(r as u32);
        }
    }

    witnesses.sort_unstable();
    witnesses.dedup();
    witnesses
}

/// Sample-phase verdict of one candidate validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triage {
    /// Clearly within tolerance on the sample's evidence.
    Accept,
    /// Clearly beyond tolerance; the subtree is pruned.
    Reject,
    /// The confidence interval straddles ε; escalate to full data.
    Borderline,
}

/// Hoeffding-style confidence half-width for a mean of `sample_rows`
/// bounded observations at the given two-sided confidence level:
/// `sqrt(ln(2 / (1 − confidence)) / (2·s))`.
///
/// The per-row removal indicators of the `g3` components are not i.i.d.
/// draws, so this is a calibrated heuristic width, not a proven bound —
/// which is exactly why *accept* stays heuristic while *reject* prunes
/// (see the module docs and DESIGN.md §14).
pub fn hoeffding_half_width(sample_rows: usize, confidence: f64) -> f64 {
    if sample_rows == 0 {
        return 0.0;
    }
    let delta = (1.0 - confidence).clamp(1e-12, 1.0);
    ((2.0 / delta).ln() / (2.0 * sample_rows as f64)).sqrt()
}

/// Classify a sample error estimate against tolerance `epsilon` with
/// confidence half-width `half_width` (see [`Triage`]). A zero half-width
/// (exhaustive sample) is always decisive.
pub fn triage(estimate: f64, half_width: f64, epsilon: f64) -> Triage {
    if estimate + half_width <= epsilon {
        Triage::Accept
    } else if estimate - half_width > epsilon {
        Triage::Reject
    } else {
        Triage::Borderline
    }
}

/// Configuration of the sample-first pipeline.
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// The underlying discovery configuration (budget, level cap, mode —
    /// escalations parallelize under `ParallelMode::WorkStealing`,
    /// checker/cache knobs are honored by the escalation checkers).
    pub base: DiscoveryConfig,
    /// Target sample size; `None` (or any value ≥ the relation's rows)
    /// runs exhaustively on the full data.
    pub sample_rows: Option<usize>,
    /// Allowed row-removal fraction per error component.
    pub epsilon: f64,
    /// Two-sided confidence level of the triage interval (default 0.95).
    pub confidence: f64,
    /// Sampling seed (recorded in checkpoint dumps; resume validates it).
    pub seed: u64,
    /// Sampling strategy (uniform reservoir or per-column stratified).
    pub strategy: SampleStrategy,
}

impl Default for ApproxConfig {
    fn default() -> ApproxConfig {
        ApproxConfig {
            base: DiscoveryConfig::default(),
            sample_rows: None,
            epsilon: 0.0,
            confidence: 0.95,
            seed: 0x0cdd_5eed,
            strategy: SampleStrategy::Uniform,
        }
    }
}

impl ApproxConfig {
    /// The [`SampleSpec`] this configuration draws for a relation of
    /// `rows` rows.
    pub fn sample_spec(&self, rows: usize) -> SampleSpec {
        SampleSpec {
            rows: self.sample_rows.unwrap_or(rows).min(rows),
            seed: self.seed,
            strategy: self.strategy,
        }
    }
}

/// Triage and escalation accounting of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApproxStats {
    /// Rows actually drawn into the sample.
    pub sample_rows: usize,
    /// Rows in the full relation.
    pub total_rows: usize,
    /// Sampling seed used.
    pub seed: u64,
    /// Manifest hash of the sample relation (provenance; equals the
    /// parent's for an exhaustive run).
    pub sample_manifest: u64,
    /// True when the sample was the whole relation (degenerate exact
    /// mode).
    pub exhaustive: bool,
    /// Candidate validations estimated on the sample (one per OCD test,
    /// one per OD direction).
    pub estimated: u64,
    /// Validations resolved *accept* by the sample alone.
    pub accepted_by_sample: u64,
    /// Validations resolved *reject* by the sample alone.
    pub rejected_by_sample: u64,
    /// Validations escalated to full-data checks.
    pub escalated: u64,
    /// Full-data checks avoided: validations the sample resolved
    /// (zero for an exhaustive run, where the "sample" is the full data).
    pub full_checks_saved: u64,
    /// Row passes over the sample (cost model: [`ERR_PASSES`] per error
    /// decomposition).
    pub sample_row_scans: u64,
    /// Row passes over the full relation (estimate passes count here for
    /// an exhaustive run; escalation checks always do).
    pub full_row_scans: u64,
}

/// An OCD together with its measured error.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximateOcd {
    /// The dependency.
    pub ocd: Ocd,
    /// Swap error in `[0, 1]` — full-data when the candidate was
    /// escalated, the sample estimate otherwise.
    pub error: f64,
    /// Exact numerator of `error` (swap removals on the measured
    /// instance) — the integer the checkpoint dumps round-trip.
    pub removals: usize,
    /// Exact denominator of `error` (rows of the measured instance).
    pub rows: usize,
}

impl ApproximateOcd {
    /// Build from the exact `(removals, rows)` rational.
    pub fn from_parts(ocd: Ocd, removals: usize, rows: usize) -> ApproximateOcd {
        let error = if rows == 0 {
            0.0
        } else {
            removals as f64 / rows as f64
        };
        ApproximateOcd {
            ocd,
            error,
            removals,
            rows,
        }
    }
}

/// Output of an approximate discovery run.
#[derive(Debug, Clone, Default)]
pub struct ApproximateResult {
    /// OCDs holding at the tolerance, with their measured errors.
    pub ocds: Vec<ApproximateOcd>,
    /// ODs holding at the tolerance.
    pub ods: Vec<Od>,
    /// Candidate checks performed.
    pub checks: u64,
    /// Why the run stopped; anything but
    /// [`TerminationReason::Complete`] means partial results.
    pub termination: TerminationReason,
    /// Sample/escalation accounting of the pipeline
    /// ([`discover_approximate_with`]); `None` only on
    /// default-constructed values.
    pub approx: Option<ApproxStats>,
}

impl ApproximateResult {
    /// True when the search explored the whole candidate tree.
    pub fn complete(&self) -> bool {
        self.termination.is_complete()
    }
}

/// OCDDISCOVER with the ε-tolerant validity test on the full data —
/// the degenerate (exhaustive-sample) call of
/// [`discover_approximate_with`]. `epsilon` is the allowed row-removal
/// fraction per component.
///
/// Pruning caveat: levelwise pruning of failed candidates is heuristic for
/// approximate dependencies (see module docs); with `epsilon = 0` the run
/// is exact and equivalent to [`crate::discover`]'s candidate tree.
pub fn discover_approximate(
    rel: &Relation,
    config: &DiscoveryConfig,
    epsilon: f64,
) -> ApproximateResult {
    discover_approximate_with(
        rel,
        &ApproxConfig {
            base: config.clone(),
            epsilon,
            ..ApproxConfig::default()
        },
    )
}

/// Direction verdict of a pending (escalation-bearing) candidate.
#[derive(Debug, Clone, Copy)]
enum DirState {
    /// Not yet evaluated (OCD still escalated).
    Unknown,
    /// Holds at ε.
    Holds,
    /// Fails at ε: extend the children.
    Fails,
    /// Escalated; index into the OD wave's job list.
    Escalated(usize),
}

/// A candidate whose verdict needs a full-data escalation wave.
struct Pending {
    x: AttrList,
    y: AttrList,
    /// Index into the OCD wave's job list, when the OCD itself was
    /// borderline.
    ocd_job: Option<usize>,
    /// Best-known OCD swap error as a `(removals, rows)` rational —
    /// the sample estimate until a full-data verdict replaces it.
    ocd_err: (usize, usize),
    /// `[x → y, y → x]` verdicts.
    dirs: [DirState; 2],
    /// Dropped without budget spend (escalation skipped by a stopped
    /// budget); mirrors the exact search dropping unprocessed candidates.
    dropped: bool,
    /// OCD escalation came back above tolerance: prune, spend 1.
    rejected: bool,
}

/// Per-level working state the pipeline threads through its phases.
struct LevelCtx<'a> {
    sample_rel: &'a Relation,
    hw: f64,
    epsilon: f64,
    exhaustive: bool,
    sample_passes: u64,
}

impl LevelCtx<'_> {
    /// Estimate both OD directions of an accepted OCD on the sample and
    /// triage them; borderline directions queue an escalation job.
    fn triage_directions(
        &mut self,
        x: &AttrList,
        y: &AttrList,
        ocd_exact: bool,
        od_jobs: &mut Vec<EscalationJob>,
        stats: &mut ApproxStats,
    ) -> [DirState; 2] {
        let mut dirs = [DirState::Unknown; 2];
        // lint: allow(unprobed-loop, exactly two iterations, one per OD direction)
        for (d, dir) in dirs.iter_mut().enumerate() {
            let forward = d == 0;
            let (lhs, rhs) = if forward { (x, y) } else { (y, x) };
            let est = od_error(self.sample_rel, lhs, rhs);
            self.sample_passes += ERR_PASSES * est.rows as u64;
            stats.estimated += 1;
            let worst = est.swap_error().max(est.split_error());
            let best_case = est.swap_error().min(est.split_error());
            // Accept needs *both* components clearly within ε; reject
            // needs *either* clearly beyond.
            *dir = if worst + self.hw <= self.epsilon {
                stats.accepted_by_sample += 1;
                DirState::Holds
            } else if best_case.max(worst) - self.hw > self.epsilon {
                stats.rejected_by_sample += 1;
                DirState::Fails
            } else {
                stats.escalated += 1;
                let job = od_jobs.len();
                od_jobs.push(EscalationJob {
                    kind: EscalationKind::Od {
                        x: x.clone(),
                        y: y.clone(),
                        forward,
                        ocd_exact,
                    },
                    need_error: self.epsilon > 0.0,
                });
                DirState::Escalated(job)
            };
        }
        dirs
    }
}

/// The sample-first discovery pipeline (see the module docs).
pub fn discover_approximate_with(rel: &Relation, cfg: &ApproxConfig) -> ApproximateResult {
    run_pipeline(rel, cfg, None)
}

/// Resume an approximate run from a checkpoint dump.
///
/// Beyond the exact resume's version/manifest/config gates
/// ([`crate::SearchSnapshot::validate`]), the dump's sampling metadata
/// must match the resume configuration *and* the sample re-drawn from it
/// must hash to the dumped sample manifest — the resumed levels are
/// triaged against the very rows the interrupted run saw, so the combined
/// run equals an uninterrupted one. Any mismatch is rejected with
/// [`crate::SnapshotError::SampleMismatch`], mirroring the manifest-hash
/// check on the parent relation.
pub fn discover_approximate_resume(
    rel: &Relation,
    cfg: &ApproxConfig,
    snap: &crate::snapshot::SearchSnapshot,
) -> Result<ApproximateResult, crate::snapshot::SnapshotError> {
    use crate::snapshot::{to_micros, SnapshotError};
    snap.validate(rel, &cfg.base)?;
    let Some(meta) = &snap.approx else {
        return Err(SnapshotError::SampleMismatch("approx"));
    };
    if meta.seed != cfg.seed {
        return Err(SnapshotError::SampleMismatch("seed"));
    }
    if meta.strategy != cfg.strategy.label() {
        return Err(SnapshotError::SampleMismatch("strategy"));
    }
    if meta.strategy_column != cfg.strategy.column().map(|c| c as u64) {
        return Err(SnapshotError::SampleMismatch("strategy_column"));
    }
    if meta.epsilon_micros != to_micros(cfg.epsilon) {
        return Err(SnapshotError::SampleMismatch("epsilon"));
    }
    if meta.confidence_micros != to_micros(cfg.confidence) {
        return Err(SnapshotError::SampleMismatch("confidence"));
    }
    let m = rel.num_rows();
    let spec = cfg.sample_spec(m);
    if meta.sample_rows != spec.rows as u64 || meta.total_rows != m as u64 {
        return Err(SnapshotError::SampleMismatch("sample_rows"));
    }
    // Re-draw the sample and require the same bytes (manifest) the
    // interrupted run triaged on.
    let sample_manifest = if spec.rows >= m {
        manifest_hash(rel)
    } else {
        Sample::build(rel, &spec).provenance.sample_manifest
    };
    if meta.sample_manifest != sample_manifest {
        return Err(SnapshotError::SampleMismatch("sample_manifest"));
    }
    if meta.ocd_errors.len() != snap.ocds.len() {
        return Err(SnapshotError::Parse(
            "approx.ocd_errors must align with the ocds array".to_string(),
        ));
    }
    let ocds = snap
        .ocds
        .iter()
        .zip(&meta.ocd_errors)
        .map(|(p, &(removals, rows))| {
            ApproximateOcd::from_parts(
                Ocd::new(AttrList::from_slice(&p.x), AttrList::from_slice(&p.y)),
                removals as usize,
                rows as usize,
            )
        })
        .collect();
    let ods = snap
        .ods
        .iter()
        .map(|p| Od::new(AttrList::from_slice(&p.x), AttrList::from_slice(&p.y)))
        .collect();
    let level = snap
        .frontier
        .iter()
        .map(|p| (AttrList::from_slice(&p.x), AttrList::from_slice(&p.y)))
        .collect();
    Ok(run_pipeline(
        rel,
        cfg,
        Some(ApproxResumeState {
            level_no: snap.level,
            level,
            ocds,
            ods,
            checks: snap.checks,
        }),
    ))
}

/// Resumed state handed to [`run_pipeline`] by
/// [`crate::discover_approximate_resume`].
pub(crate) struct ApproxResumeState {
    /// Level number of the dumped frontier.
    pub(crate) level_no: usize,
    /// The dumped frontier.
    pub(crate) level: Vec<(AttrList, AttrList)>,
    /// Accumulated OCDs (with their error rationals).
    pub(crate) ocds: Vec<ApproximateOcd>,
    /// Accumulated ODs.
    pub(crate) ods: Vec<Od>,
    /// Checks spent before the dump.
    pub(crate) checks: u64,
}

/// Pipeline driver, shared by the fresh and resumed entry points.
pub(crate) fn run_pipeline(
    rel: &Relation,
    cfg: &ApproxConfig,
    resume: Option<ApproxResumeState>,
) -> ApproximateResult {
    let start = crate::runtime::now();
    let m = rel.num_rows();
    let spec = cfg.sample_spec(m);
    let exhaustive = spec.rows >= m;
    // The exhaustive "sample" is the relation itself — no copy, and the
    // degenerate pipeline is byte-identical to full-data discovery.
    let sample_store: Option<Sample> = if exhaustive {
        None
    } else {
        Some(Sample::build(rel, &spec))
    };
    let sample_rel: &Relation = sample_store.as_ref().map_or(rel, |s| &s.relation);
    let s = sample_rel.num_rows();
    let mut stats = ApproxStats {
        sample_rows: s,
        total_rows: m,
        seed: cfg.seed,
        sample_manifest: sample_store
            .as_ref()
            .map_or_else(|| manifest_hash(rel), |smp| smp.provenance.sample_manifest),
        exhaustive,
        ..ApproxStats::default()
    };
    // Exhaustive estimates are exact (zero width); an empty sample of a
    // non-empty relation can prove nothing, so everything escalates.
    let hw = if exhaustive {
        0.0
    } else if s == 0 {
        f64::INFINITY
    } else {
        hoeffding_half_width(s, cfg.confidence)
    };

    // Same amortized budget as the exhaustive search; see
    // `discover_bidirectional` for the polling contract.
    let initial_checks = resume.as_ref().map_or(0, |r| r.checks);
    let budget = Budget::new(&cfg.base, start, initial_checks);
    let mut level_capped = false;
    let mut out = ApproximateResult::default();

    // Approximate runs skip column reduction: near-constant columns are
    // precisely what ε-tolerance is for.
    let universe: Vec<usize> = (0..rel.num_columns()).collect();
    let (mut level, mut level_no) = match resume {
        Some(st) => {
            out.ocds = st.ocds;
            out.ods = st.ods;
            (st.level, st.level_no)
        }
        None => {
            let mut seed_level: Vec<(AttrList, AttrList)> = Vec::new();
            // lint: allow(unprobed-loop, level-2 seeding, bounded by the reduced universe width squared)
            for (i, &a) in universe.iter().enumerate() {
                for &b in &universe[i + 1..] {
                    seed_level.push((AttrList::single(a), AttrList::single(b)));
                }
            }
            (seed_level, 2usize)
        }
    };

    let mut recorder = crate::snapshot::approx_recorder(rel, cfg, &stats);
    if let Some(rec) = recorder.as_mut() {
        rec.record_boundary(level_no, &level, &out, &budget);
    }

    'outer: while !level.is_empty() {
        if cfg.base.max_level.is_some_and(|max| level_no > max) {
            level_capped = true;
            break;
        }
        let mut next: Vec<(AttrList, AttrList)> = Vec::new();
        let mut ctx = LevelCtx {
            sample_rel,
            hw,
            epsilon: cfg.epsilon,
            exhaustive,
            sample_passes: 0,
        };
        let mut pending: Vec<Pending> = Vec::new();
        let mut ocd_jobs: Vec<EscalationJob> = Vec::new();
        let mut od_jobs: Vec<EscalationJob> = Vec::new();

        // Phase A — estimate every candidate on the sample; candidates
        // fully decided by the sample finalize inline (identical control
        // flow, spends and emission order to the pre-pipeline checker in
        // the exhaustive case); escalation-bearing ones go to `pending`.
        for (x, y) in &level {
            if !budget.probe() {
                break 'outer;
            }
            let est = ocd_error(sample_rel, x, y);
            ctx.sample_passes += ERR_PASSES * est.rows as u64;
            stats.estimated += 1;
            match triage(est.swap_error(), hw, cfg.epsilon) {
                Triage::Reject => {
                    stats.rejected_by_sample += 1;
                    budget.spend(1);
                }
                Triage::Accept => {
                    stats.accepted_by_sample += 1;
                    // A sample accept proves exactness only when the
                    // sample is the full data.
                    let ocd_exact = exhaustive && est.swap_removals == 0;
                    let dirs = ctx.triage_directions(x, y, ocd_exact, &mut od_jobs, &mut stats);
                    if dirs
                        .iter()
                        .any(|d| matches!(d, DirState::Escalated(_) | DirState::Unknown))
                    {
                        pending.push(Pending {
                            x: x.clone(),
                            y: y.clone(),
                            ocd_job: None,
                            ocd_err: (est.swap_removals, est.rows),
                            dirs,
                            dropped: false,
                            rejected: false,
                        });
                    } else {
                        finalize_candidate(
                            x,
                            y,
                            (est.swap_removals, est.rows),
                            &dirs,
                            &universe,
                            &mut out,
                            &mut next,
                        );
                        budget.spend(3);
                    }
                }
                Triage::Borderline => {
                    stats.escalated += 1;
                    let job = ocd_jobs.len();
                    ocd_jobs.push(EscalationJob {
                        kind: EscalationKind::Ocd {
                            x: x.clone(),
                            y: y.clone(),
                        },
                        need_error: cfg.epsilon > 0.0,
                    });
                    pending.push(Pending {
                        x: x.clone(),
                        y: y.clone(),
                        ocd_job: Some(job),
                        ocd_err: (est.swap_removals, est.rows),
                        dirs: [DirState::Unknown; 2],
                        dropped: false,
                        rejected: false,
                    });
                }
            }
        }

        // Phase B — OCD escalation wave on the full data; survivors get
        // their OD directions estimated (possibly queueing OD jobs).
        if !ocd_jobs.is_empty() {
            let verdicts = crate::search::run_escalations(rel, &cfg.base, &ocd_jobs, &budget);
            stats.full_row_scans += verdicts.iter().map(|v| v.rows_scanned).sum::<u64>();
            // lint: allow(unprobed-loop, one pass over the level's pending candidates; the escalation waves around it poll the budget per job)
            for p in pending.iter_mut() {
                let Some(job) = p.ocd_job else { continue };
                let Some(v) = verdicts.get(job) else {
                    p.dropped = true;
                    continue;
                };
                if v.skipped {
                    p.dropped = true;
                    continue;
                }
                let holds = v.exact || v.error.is_some_and(|e| e.swap_error() <= cfg.epsilon);
                if !holds {
                    p.rejected = true;
                    continue;
                }
                p.ocd_err = match v.error {
                    Some(e) => (e.swap_removals, e.rows),
                    None => (0, m),
                };
                if budget.is_stopped() {
                    p.dropped = true;
                    continue;
                }
                p.dirs = ctx.triage_directions(&p.x, &p.y, v.exact, &mut od_jobs, &mut stats);
            }
        }

        // Phase C — OD escalation wave (directions from phases A and B).
        let od_verdicts: Vec<EscalationVerdict> = if od_jobs.is_empty() {
            Vec::new()
        } else {
            let verdicts = crate::search::run_escalations(rel, &cfg.base, &od_jobs, &budget);
            stats.full_row_scans += verdicts.iter().map(|v| v.rows_scanned).sum::<u64>();
            verdicts
        };

        // Phase D — finalize pending candidates in level order.
        for p in &pending {
            if p.dropped {
                continue;
            }
            if p.rejected {
                budget.spend(1);
                continue;
            }
            let mut dirs = [DirState::Unknown; 2];
            let mut dropped = false;
            // lint: allow(unprobed-loop, exactly two iterations, one per OD direction)
            for (d, dir) in p.dirs.iter().enumerate() {
                dirs[d] = match dir {
                    DirState::Escalated(job) => match od_verdicts.get(*job) {
                        Some(v) if !v.skipped => {
                            let holds = v.exact || v.error.is_some_and(|e| e.holds_at(cfg.epsilon));
                            if holds {
                                DirState::Holds
                            } else {
                                DirState::Fails
                            }
                        }
                        _ => {
                            dropped = true;
                            DirState::Unknown
                        }
                    },
                    DirState::Unknown => {
                        dropped = true;
                        DirState::Unknown
                    }
                    other => *other,
                };
            }
            if dropped {
                continue;
            }
            finalize_candidate(&p.x, &p.y, p.ocd_err, &dirs, &universe, &mut out, &mut next);
            budget.spend(3);
        }

        if ctx.exhaustive {
            stats.full_row_scans += ctx.sample_passes;
        } else {
            stats.sample_row_scans += ctx.sample_passes;
        }

        let mut seen: BTreeSet<(AttrList, AttrList)> = BTreeSet::new();
        next.retain(|c| seen.insert(c.clone()));
        level = next;
        level_no += 1;
        if !budget.is_stopped() {
            if let Some(rec) = recorder.as_mut() {
                rec.record_boundary(level_no, &level, &out, &budget);
            }
        }
    }

    out.checks = budget.checks();
    out.termination = match budget.cause() {
        Some(cause) => cause.into(),
        None if level_capped => TerminationReason::LevelCap,
        None => TerminationReason::Complete,
    };
    stats.full_checks_saved = if exhaustive {
        0
    } else {
        stats.estimated.saturating_sub(stats.escalated)
    };
    out.ocds.sort_by(|a, b| a.ocd.cmp(&b.ocd));
    out.ods.sort();
    if let Some(rec) = recorder.as_mut() {
        rec.finish(level_no, &level, &out, &budget, &stats);
    }
    out.approx = Some(stats);
    out
}

/// Emit a decided candidate: the OCD, each holding direction's OD, and
/// the children of each failing direction — the exact emission and
/// child-generation order of the pre-pipeline checker.
fn finalize_candidate(
    x: &AttrList,
    y: &AttrList,
    ocd_err: (usize, usize),
    dirs: &[DirState; 2],
    universe: &[usize],
    out: &mut ApproximateResult,
    next: &mut Vec<(AttrList, AttrList)>,
) {
    out.ocds.push(ApproximateOcd::from_parts(
        Ocd::new(x.clone(), y.clone()),
        ocd_err.0,
        ocd_err.1,
    ));
    let unused: Vec<usize> = universe
        .iter()
        .copied()
        .filter(|&a| !x.contains(a) && !y.contains(a))
        .collect();
    if matches!(dirs[0], DirState::Holds) {
        out.ods.push(Od::new(x.clone(), y.clone()));
    } else {
        // lint: allow(unprobed-loop, child generation bounded by the unused attributes of one candidate (schema width))
        for &a in &unused {
            next.push((x.with_appended(a), y.clone()));
        }
    }
    if matches!(dirs[1], DirState::Holds) {
        out.ods.push(Od::new(y.clone(), x.clone()));
    } else {
        // lint: allow(unprobed-loop, child generation bounded by the unused attributes of one candidate (schema width))
        for &a in &unused {
            next.push((x.clone(), y.with_appended(a)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn lnds_basics() {
        assert_eq!(longest_nondecreasing_subsequence(&[]), 0);
        assert_eq!(longest_nondecreasing_subsequence(&[1, 2, 2, 3]), 4);
        assert_eq!(longest_nondecreasing_subsequence(&[3, 2, 1]), 1);
        assert_eq!(longest_nondecreasing_subsequence(&[1, 3, 2, 4]), 3);
        assert_eq!(longest_nondecreasing_subsequence(&[2, 2, 1, 1, 2]), 3);
    }

    #[test]
    fn exact_dependency_has_zero_error() {
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 1, 2, 2])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert!(err.is_exact());
        assert_eq!(err.swap_error(), 0.0);
    }

    #[test]
    fn single_swap_costs_one_row() {
        // One outlier: removing it makes a -> b exact.
        let r = rel(&[("a", &[1, 2, 3, 4, 5]), ("b", &[1, 2, 3, 9, 5])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.swap_removals, 1);
        assert_eq!(err.split_removals, 0);
        assert!(err.holds_at(0.2));
        assert!(!err.holds_at(0.1));
    }

    #[test]
    fn split_error_counts_minority_rows() {
        // a=1 twice with b 5 and 6: one row must go.
        let r = rel(&[("a", &[1, 1, 2]), ("b", &[5, 6, 7])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.split_removals, 1);
    }

    #[test]
    fn error_zero_iff_checker_valid() {
        use crate::check::check_od;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let vals = |rng: &mut StdRng| -> Vec<i64> {
                (0..12).map(|_| rng.random_range(0..4)).collect()
            };
            let (va, vb) = (vals(&mut rng), vals(&mut rng));
            let r = rel(&[("a", &va), ("b", &vb)]);
            for (x, y) in [(l(&[0]), l(&[1])), (l(&[1]), l(&[0]))] {
                let err = od_error(&r, &x, &y);
                assert_eq!(
                    err.is_exact(),
                    check_od(&r, &x, &y).is_valid(),
                    "seed {seed}: error {err:?} vs checker on {x} -> {y}"
                );
            }
        }
    }

    #[test]
    fn projection_ranks_blockwise_matches_scalar_oracle() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        // Rows past BLOCK_PAIRS exercise the blockwise path, including
        // ragged tails and block-boundary rank carries.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = 64 + (seed as usize * 13) % 140;
            let card = 1 + (seed as i64 % 5);
            let va: Vec<i64> = (0..rows)
                .map(|_| rng.random_range(0..card.max(2)))
                .collect();
            let vb: Vec<i64> = (0..rows).map(|_| rng.random_range(0..3)).collect();
            let r = rel(&[("a", &va), ("b", &vb)]);
            for cols in [l(&[0]), l(&[1]), l(&[0, 1]), l(&[1, 0])] {
                let index = sort_index_by(&r, cols.as_slice());
                assert_eq!(
                    projection_ranks_on(&r, &cols, &index),
                    projection_ranks_scalar(&r, &cols, &index),
                    "seed {seed} cols {cols}"
                );
            }
        }
    }

    #[test]
    fn swap_error_matches_brute_force_minimum() {
        // Brute-force minimal removal for the OCD on tiny relations: try
        // all subsets, find the largest swap-free one.
        use crate::check::check_od_pairwise;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = 7usize;
            let va: Vec<i64> = (0..rows).map(|_| rng.random_range(0..3)).collect();
            let vb: Vec<i64> = (0..rows).map(|_| rng.random_range(0..3)).collect();
            let r = rel(&[("a", &va), ("b", &vb)]);
            let err = ocd_error(&r, &l(&[0]), &l(&[1]));

            let mut best_keep = 0usize;
            for mask in 0u32..(1 << rows) {
                let keep: Vec<usize> = (0..rows).filter(|i| mask & (1 << i) != 0).collect();
                if keep.len() <= best_keep {
                    continue;
                }
                let sub = Relation::from_columns(vec![
                    (
                        "a".to_string(),
                        keep.iter().map(|&i| Value::Int(va[i])).collect(),
                    ),
                    (
                        "b".to_string(),
                        keep.iter().map(|&i| Value::Int(vb[i])).collect(),
                    ),
                ])
                .unwrap();
                let xy = l(&[0]).concat(&l(&[1]));
                let yx = l(&[1]).concat(&l(&[0]));
                if check_od_pairwise(&sub, &xy, &yx) && check_od_pairwise(&sub, &yx, &xy) {
                    best_keep = keep.len();
                }
            }
            assert_eq!(err.swap_removals, rows - best_keep, "seed {seed}");
        }
    }

    #[test]
    fn approximate_discovery_tolerates_outliers() {
        // 30 clean monotone rows + 1 outlier: exact discovery drops the
        // dependency, ε = 0.05 keeps it.
        let mut va: Vec<i64> = (0..30).collect();
        let mut vb: Vec<i64> = (0..30).map(|i| i * 2).collect();
        va.push(31);
        vb.push(0); // outlier swap
        let r = rel(&[("a", &va), ("b", &vb)]);

        let exact = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
        assert!(exact.ods.is_empty());
        let approx = discover_approximate(&r, &DiscoveryConfig::default(), 0.05);
        assert_eq!(approx.ods.len(), 2, "a -> b and b -> a at tolerance");
        assert!(approx.ocds[0].error > 0.0);
    }

    #[test]
    fn epsilon_zero_matches_exact_discovery_on_ocds() {
        use crate::{discover, DiscoveryConfig};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cols: Vec<(String, Vec<Value>)> = (0..3)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..14)
                            .map(|_| Value::Int(rng.random_range(0..3)))
                            .collect(),
                    )
                })
                .collect();
            let r = Relation::from_columns(cols).unwrap();
            let exact = discover(
                &r,
                &DiscoveryConfig {
                    column_reduction: false,
                    ..DiscoveryConfig::default()
                },
            );
            let approx = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
            let exact_set: std::collections::HashSet<Ocd> =
                exact.ocds.iter().map(Ocd::canonical).collect();
            let approx_set: std::collections::HashSet<Ocd> =
                approx.ocds.iter().map(|a| a.ocd.canonical()).collect();
            assert_eq!(exact_set, approx_set, "seed {seed}");
        }
    }

    #[test]
    fn witnesses_repair_the_dependency() {
        use crate::check::check_od;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let va: Vec<i64> = (0..12).map(|_| rng.random_range(0..4)).collect();
            let vb: Vec<i64> = (0..12).map(|_| rng.random_range(0..4)).collect();
            let r = rel(&[("a", &va), ("b", &vb)]);
            let witnesses = removal_witnesses(&r, &l(&[0]), &l(&[1]));
            // Remove the witnesses and recheck: the OD must now hold.
            let keep: Vec<usize> = (0..12)
                .filter(|&i| !witnesses.contains(&(i as u32)))
                .collect();
            let repaired = rel(&[
                ("a", &keep.iter().map(|&i| va[i]).collect::<Vec<_>>()),
                ("b", &keep.iter().map(|&i| vb[i]).collect::<Vec<_>>()),
            ]);
            assert!(
                check_od(&repaired, &l(&[0]), &l(&[1])).is_valid(),
                "seed {seed}: witnesses {witnesses:?} did not repair a -> b"
            );
        }
    }

    #[test]
    fn witnesses_empty_for_exact_dependency() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 2, 2])]);
        assert!(removal_witnesses(&r, &l(&[0]), &l(&[1])).is_empty());
    }

    #[test]
    fn witness_count_matches_error_components_for_pure_cases() {
        // Pure swap case, no splits: witness count equals swap_removals.
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 2, 9, 4])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert_eq!(err.split_removals, 0);
        let w = removal_witnesses(&r, &l(&[0]), &l(&[1]));
        assert_eq!(w.len(), err.swap_removals);
    }

    #[test]
    fn budget_and_cancellation_yield_typed_partial_results() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[2, 1, 4, 3, 6, 5]),
            ("c", &[6, 5, 4, 3, 2, 1]),
        ]);
        let limited = discover_approximate(
            &r,
            &DiscoveryConfig {
                max_checks: Some(2),
                ..DiscoveryConfig::default()
            },
            0.5,
        );
        assert!(!limited.complete());
        assert_eq!(limited.termination, TerminationReason::CheckBudget);

        use crate::runtime::RunController;
        let controller = RunController::new();
        controller.cancel();
        let cancelled = discover_approximate(
            &r,
            &DiscoveryConfig {
                controller: Some(controller),
                ..DiscoveryConfig::default()
            },
            0.5,
        );
        assert_eq!(cancelled.termination, TerminationReason::Cancelled);
        assert!(cancelled.ocds.is_empty(), "no candidate was processed");
    }

    #[test]
    fn empty_relation_is_trivially_exact() {
        let r = rel(&[("a", &[]), ("b", &[])]);
        let err = od_error(&r, &l(&[0]), &l(&[1]));
        assert!(err.is_exact());
        assert!(err.holds_at(0.0));
    }

    #[test]
    fn triage_boundaries() {
        assert_eq!(triage(0.01, 0.005, 0.02), Triage::Accept);
        assert_eq!(triage(0.10, 0.005, 0.02), Triage::Reject);
        assert_eq!(triage(0.02, 0.005, 0.02), Triage::Borderline);
        // Zero half-width is always decisive.
        assert_eq!(triage(0.02, 0.0, 0.02), Triage::Accept);
        assert_eq!(triage(0.021, 0.0, 0.02), Triage::Reject);
        // Infinite half-width never is.
        assert_eq!(triage(0.0, f64::INFINITY, 0.5), Triage::Borderline);
    }

    #[test]
    fn half_width_shrinks_with_sample_size() {
        let w100 = hoeffding_half_width(100, 0.95);
        let w10000 = hoeffding_half_width(10_000, 0.95);
        assert!(w100 > w10000);
        assert!((w100 / w10000 - 10.0).abs() < 1e-9, "1/sqrt(s) scaling");
        assert_eq!(hoeffding_half_width(0, 0.95), 0.0);
    }

    fn sampled_cfg(sample: usize, epsilon: f64) -> ApproxConfig {
        ApproxConfig {
            sample_rows: Some(sample),
            epsilon,
            ..ApproxConfig::default()
        }
    }

    /// A relation with a clean OD a -> b plus a noisy third column.
    fn pipeline_rel(rows: usize) -> Relation {
        let va: Vec<i64> = (0..rows as i64).collect();
        let vb: Vec<i64> = (0..rows as i64).map(|i| i / 2).collect();
        let vc: Vec<i64> = (0..rows as i64).map(|i| (i * 7919) % 53).collect();
        rel(&[("a", &va), ("b", &vb), ("c", &vc)])
    }

    #[test]
    fn exhaustive_pipeline_reports_stats() {
        let r = pipeline_rel(40);
        let res = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
        let stats = res.approx.expect("pipeline always reports stats");
        assert!(stats.exhaustive);
        assert_eq!(stats.sample_rows, 40);
        assert_eq!(stats.total_rows, 40);
        assert_eq!(stats.escalated, 0, "exhaustive runs never escalate");
        assert_eq!(stats.full_checks_saved, 0);
        assert_eq!(stats.sample_row_scans, 0);
        assert!(stats.full_row_scans > 0);
    }

    #[test]
    fn sampled_epsilon_zero_escalates_everything_and_stays_exact() {
        let r = pipeline_rel(200);
        let exact = discover_approximate(&r, &DiscoveryConfig::default(), 0.0);
        let sampled = discover_approximate_with(&r, &sampled_cfg(50, 0.0));
        // ε = 0 with a real sample: accepts are impossible (est + hw > 0),
        // so every surviving candidate is escalated and verified — results
        // match the full-data run exactly.
        let exact_ocds: Vec<&Ocd> = exact.ocds.iter().map(|a| &a.ocd).collect();
        let sampled_ocds: Vec<&Ocd> = sampled.ocds.iter().map(|a| &a.ocd).collect();
        assert_eq!(exact_ocds, sampled_ocds);
        assert_eq!(exact.ods, sampled.ods);
        let stats = sampled.approx.expect("stats");
        assert!(!stats.exhaustive);
        assert!(stats.escalated > 0);
        assert_eq!(stats.accepted_by_sample, 0, "ε=0 can never sample-accept");
    }

    #[test]
    fn sampled_pipeline_is_deterministic_for_a_fixed_seed() {
        let r = pipeline_rel(300);
        let cfg = sampled_cfg(60, 0.05);
        let a = discover_approximate_with(&r, &cfg);
        let b = discover_approximate_with(&r, &cfg);
        assert_eq!(a.ocds, b.ocds);
        assert_eq!(a.ods, b.ods);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.approx, b.approx);
    }

    #[test]
    fn different_seeds_may_differ_but_both_carry_provenance() {
        let r = pipeline_rel(300);
        let mut cfg = sampled_cfg(60, 0.05);
        let a = discover_approximate_with(&r, &cfg);
        cfg.seed = 99;
        let b = discover_approximate_with(&r, &cfg);
        let (sa, sb) = (a.approx.expect("stats"), b.approx.expect("stats"));
        assert_eq!(sa.seed, 0x0cdd_5eed);
        assert_eq!(sb.seed, 99);
        assert_ne!(sa.sample_manifest, 0);
        assert_ne!(sb.sample_manifest, 0);
    }

    #[test]
    fn sampled_pipeline_saves_full_checks_at_positive_epsilon() {
        // Big margin: the clean OD has error 0, the noise column errors
        // are far above ε, so the sample resolves everything and no
        // full-data work happens at all.
        let r = pipeline_rel(600);
        let sampled = discover_approximate_with(&r, &sampled_cfg(150, 0.02));
        let exhaustive = discover_approximate(&r, &DiscoveryConfig::default(), 0.02);
        assert_eq!(
            sampled
                .ods
                .iter()
                .map(|od| format!("{od:?}"))
                .collect::<Vec<_>>(),
            exhaustive
                .ods
                .iter()
                .map(|od| format!("{od:?}"))
                .collect::<Vec<_>>(),
        );
        let stats = sampled.approx.expect("stats");
        let full = exhaustive.approx.expect("stats");
        assert!(stats.full_checks_saved > 0);
        assert!(
            stats.full_row_scans < full.full_row_scans,
            "sampled {} vs exhaustive {}",
            stats.full_row_scans,
            full.full_row_scans
        );
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ocdd-approx-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn checkpointed_cfg(dir: &std::path::Path, sample: usize, epsilon: f64) -> ApproxConfig {
        use crate::snapshot::CheckpointPolicy;
        ApproxConfig {
            base: DiscoveryConfig {
                checkpoint: Some(CheckpointPolicy {
                    keep_last: 0,
                    delete_on_complete: false,
                    ..CheckpointPolicy::new(dir)
                }),
                ..DiscoveryConfig::default()
            },
            ..sampled_cfg(sample, epsilon)
        }
    }

    #[test]
    fn checkpoint_resume_replays_the_interrupted_run_exactly() {
        use crate::snapshot::{list_snapshots, read_snapshot};
        let r = pipeline_rel(300);
        let dir = ckpt_dir("resume");
        let cfg = checkpointed_cfg(&dir, 60, 0.05);
        let full = discover_approximate_with(&r, &cfg);
        assert!(full.complete());

        // Resume from every boundary dump; each must reproduce the
        // uninterrupted run's results and cumulative check count.
        let dumps = list_snapshots(&dir, None).expect("dump dir");
        assert!(!dumps.is_empty(), "boundary dumps were written");
        let resume_cfg = ApproxConfig {
            base: DiscoveryConfig::default(),
            ..cfg.clone()
        };
        for dump in &dumps {
            let snap = read_snapshot(dump).expect("readable dump");
            assert!(snap.approx.is_some(), "approx dumps carry sampling meta");
            let resumed =
                discover_approximate_resume(&r, &resume_cfg, &snap).expect("valid resume");
            assert_eq!(resumed.ocds, full.ocds, "dump {}", dump.display());
            assert_eq!(resumed.ods, full.ods, "dump {}", dump.display());
            assert_eq!(resumed.checks, full.checks, "dump {}", dump.display());
            assert!(resumed.complete());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_sample_and_kind_mismatches() {
        use crate::snapshot::{latest_snapshot, read_snapshot, SnapshotError};
        let r = pipeline_rel(300);
        let dir = ckpt_dir("mismatch");
        let cfg = checkpointed_cfg(&dir, 60, 0.05);
        let _ = discover_approximate_with(&r, &cfg);
        let snap = read_snapshot(&latest_snapshot(&dir).expect("dump")).expect("readable");

        let reject = |cfg: &ApproxConfig, field: &'static str| {
            assert_eq!(
                discover_approximate_resume(&r, cfg, &snap).expect_err("must reject"),
                SnapshotError::SampleMismatch(field)
            );
        };
        reject(
            &ApproxConfig {
                seed: 1234,
                ..cfg.clone()
            },
            "seed",
        );
        reject(
            &ApproxConfig {
                epsilon: 0.06,
                ..cfg.clone()
            },
            "epsilon",
        );
        reject(
            &ApproxConfig {
                confidence: 0.9,
                ..cfg.clone()
            },
            "confidence",
        );
        reject(
            &ApproxConfig {
                strategy: SampleStrategy::Stratified(0),
                ..cfg.clone()
            },
            "strategy",
        );
        reject(
            &ApproxConfig {
                sample_rows: Some(61),
                ..cfg.clone()
            },
            "sample_rows",
        );

        // The exact resume path refuses approximate dumps outright.
        assert_eq!(
            crate::search::discover_resume(&r, &cfg.base, &snap).err(),
            Some(SnapshotError::SampleMismatch("approx"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn approximate_resume_rejects_exact_dumps() {
        use crate::snapshot::{latest_snapshot, read_snapshot, CheckpointPolicy, SnapshotError};
        let r = pipeline_rel(40);
        let dir = ckpt_dir("exact-dump");
        let exact_cfg = DiscoveryConfig {
            checkpoint: Some(CheckpointPolicy {
                keep_last: 0,
                delete_on_complete: false,
                ..CheckpointPolicy::new(&dir)
            }),
            ..DiscoveryConfig::default()
        };
        let _ = crate::search::discover(&r, &exact_cfg);
        let snap = read_snapshot(&latest_snapshot(&dir).expect("dump")).expect("readable");
        assert!(snap.approx.is_none());
        let cfg = ApproxConfig {
            base: exact_cfg,
            ..ApproxConfig::default()
        };
        assert_eq!(
            discover_approximate_resume(&r, &cfg, &snap).err(),
            Some(SnapshotError::SampleMismatch("approx"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escalation_modes_agree_on_sampled_runs() {
        use crate::config::ParallelMode;
        let r = pipeline_rel(260);
        let mut cfg = sampled_cfg(64, 0.0); // everything escalates
        let seq = discover_approximate_with(&r, &cfg);
        cfg.base.mode = ParallelMode::WorkStealing(3);
        let steal = discover_approximate_with(&r, &cfg);
        assert_eq!(seq.ocds, steal.ocds);
        assert_eq!(seq.ods, steal.ods);
        assert_eq!(seq.checks, steal.checks);
    }
}
