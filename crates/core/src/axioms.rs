//! The `J_OD` axiom system for order dependencies (Table 3 of the paper,
//! after Szlichta et al.) as executable inference rules, plus a bounded
//! forward-closure engine.
//!
//! The rules are *syntactic*: they transform dependencies into dependencies
//! that are logically implied on every instance. The test-suite verifies
//! soundness empirically: whenever a premise holds on a relation, the
//! conclusion produced by the rule holds too.
//!
//! Implemented rules:
//!
//! * **AX1 Reflexivity** — `XY → X` for every split of a list.
//! * **AX2 Prefix** — `X → Y ⟹ ZX → ZY`.
//! * **AX3 Normalization** — repeated attributes after their first
//!   occurrence can be dropped: `ABA ↔ AB` (see
//!   [`crate::deps::AttrList::normalized`]).
//! * **AX4 Transitivity** — `X → Y, Y → Z ⟹ X → Z`.
//! * **AX5 Suffix** — `X → Y ⟹ X → YX`.
//!
//! Derived rules used in the paper's proofs:
//!
//! * **Downward closure for OCDs** (Theorem 3.6) — `XY ~ ZV ⟹ X ~ Z`
//!   whose contrapositive is the pruning rule (Theorem 3.7).
//! * **Theorem 3.8** — `X ~ Y ⟺ XY → Y`.
//! * **Theorem 3.9 (pruning)** — `X → Y ⟹ XZ ~ Y` for any `Z` disjoint
//!   from `X` and `Y`.

use crate::deps::{AttrList, Od};
use ocdd_relation::ColumnId;
use std::collections::HashSet;

/// AX1 Reflexivity: all dependencies `XY → X` obtainable by splitting
/// `list` into a prefix and a suffix (including the empty prefix).
pub fn reflexivity(list: &AttrList) -> Vec<Od> {
    (0..=list.len())
        .map(|k| Od::new(list.clone(), AttrList::from_slice(&list.as_slice()[..k])))
        .collect()
}

/// AX2 Prefix: from `X → Y` derive `ZX → ZY`.
pub fn prefix(od: &Od, z: &AttrList) -> Od {
    Od::new(z.concat(&od.lhs), z.concat(&od.rhs))
}

/// AX3 Normalization applied to both sides of a dependency.
pub fn normalize(od: &Od) -> Od {
    Od::new(od.lhs.normalized(), od.rhs.normalized())
}

/// AX4 Transitivity: from `X → Y` and `Y → Z` derive `X → Z`
/// (returns `None` when the middle lists do not match).
pub fn transitivity(a: &Od, b: &Od) -> Option<Od> {
    (a.rhs == b.lhs).then(|| Od::new(a.lhs.clone(), b.rhs.clone()))
}

/// AX5 Suffix: from `X → Y` derive `X → YX`.
pub fn suffix(od: &Od) -> Od {
    Od::new(od.lhs.clone(), od.rhs.concat(&od.lhs))
}

/// Theorem 3.8: the OCD `X ~ Y` is equivalent to the OD `XY → Y`.
pub fn ocd_as_od(x: &AttrList, y: &AttrList) -> Od {
    Od::new(x.concat(y), y.clone())
}

/// The Shift theorem (used throughout the §3.3 proofs): from the order
/// equivalence `Y ↔ Z` derive `XY ↔ XZ` for any prefix list `X` — the
/// Prefix axiom applied to both directions. Returns the two ODs of the
/// derived equivalence.
pub fn shift(y: &AttrList, z: &AttrList, x: &AttrList) -> [Od; 2] {
    [
        prefix(&Od::new(y.clone(), z.clone()), x),
        prefix(&Od::new(z.clone(), y.clone()), x),
    ]
}

/// The Replace theorem (Theorem 6 of Szlichta et al., used by column
/// reduction §4.1): given the single-attribute equivalence `a ↔ b`,
/// substitute every occurrence of `a` by `b` in a dependency. The result
/// is implied whenever the original holds together with the equivalence.
pub fn replace_attr(od: &Od, a: ocdd_relation::ColumnId, b: ocdd_relation::ColumnId) -> Od {
    let subst = |l: &AttrList| {
        AttrList::from(
            l.as_slice()
                .iter()
                .map(|&c| if c == a { b } else { c })
                .collect::<Vec<_>>(),
        )
    };
    Od::new(subst(&od.lhs), subst(&od.rhs))
}

/// Downward closure for OCDs (Theorem 3.6): from `XY ~ ZV` infer `X ~ Z`
/// for every prefix pair. Returns all `(prefix of x, prefix of z)` pairs
/// implied (excluding empty prefixes, which are trivial).
pub fn ocd_downward_closure(x: &AttrList, z: &AttrList) -> Vec<(AttrList, AttrList)> {
    let mut out = Vec::new();
    for i in 1..=x.len() {
        for j in 1..=z.len() {
            out.push((
                AttrList::from_slice(&x.as_slice()[..i]),
                AttrList::from_slice(&z.as_slice()[..j]),
            ));
        }
    }
    out
}

/// A bounded forward-closure engine over the `J_OD` rules.
///
/// Saturates a set of ODs under normalization, transitivity, suffix,
/// reflexivity and single-attribute prefix steps, keeping only
/// dependencies whose sides stay within `max_len` attributes. This is not
/// a decision procedure for OD implication (which is co-NP-complete, §6)
/// but is sufficient to mechanically recover the derivations used in the
/// paper's examples and tests.
#[derive(Debug)]
pub struct OdClosure {
    universe: Vec<ColumnId>,
    max_len: usize,
    known: HashSet<Od>,
}

impl OdClosure {
    /// Create a closure engine over the attribute `universe`, bounding all
    /// list lengths by `max_len`.
    pub fn new(universe: Vec<ColumnId>, max_len: usize) -> OdClosure {
        OdClosure {
            universe,
            max_len,
            known: HashSet::new(),
        }
    }

    /// Add a base dependency (normalized before storing).
    pub fn insert(&mut self, od: Od) {
        let od = normalize(&od);
        if od.lhs.len() <= self.max_len && od.rhs.len() <= self.max_len {
            self.known.insert(od);
        }
    }

    /// Saturate under the rules until no new dependency appears.
    pub fn saturate(&mut self) {
        loop {
            let mut fresh: Vec<Od> = Vec::new();
            let consider = |od: Od, fresh: &mut Vec<Od>, known: &HashSet<Od>| {
                let od = normalize(&od);
                if od.lhs.len() <= self.max_len
                    && od.rhs.len() <= self.max_len
                    && !known.contains(&od)
                {
                    fresh.push(od);
                }
            };

            for od in &self.known {
                // Suffix.
                consider(suffix(od), &mut fresh, &self.known);
                // Reflexivity on both sides' lists.
                for refl in reflexivity(&od.lhs).into_iter().chain(reflexivity(&od.rhs)) {
                    consider(refl, &mut fresh, &self.known);
                }
                // Single-attribute prefix.
                for &z in &self.universe {
                    consider(prefix(od, &AttrList::single(z)), &mut fresh, &self.known);
                }
                // Transitivity with every other known dependency.
                for other in &self.known {
                    if let Some(t) = transitivity(od, other) {
                        consider(t, &mut fresh, &self.known);
                    }
                }
            }

            if fresh.is_empty() {
                break;
            }
            self.known.extend(fresh);
        }
    }

    /// Whether `od` is in the (saturated) closure, up to normalization.
    pub fn contains(&self, od: &Od) -> bool {
        self.known.contains(&normalize(od))
    }

    /// Number of dependencies currently known.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// True when no dependency is known.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_od_pairwise;
    use ocdd_relation::{Relation, Value};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    fn random_relation(seed: u64, rows: usize, cols: usize, domain: i64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_columns(
            (0..cols)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..rows)
                            .map(|_| Value::Int(rng.random_range(0..domain)))
                            .collect(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn reflexivity_produces_prefix_ods() {
        let ods = reflexivity(&l(&[0, 1, 2]));
        assert_eq!(ods.len(), 4);
        assert!(ods.iter().any(|od| od.to_string() == "[0,1,2] -> [0,1]"));
        assert!(ods.iter().any(|od| od.to_string() == "[0,1,2] -> []"));
    }

    #[test]
    fn rule_shapes() {
        let od = Od::new(l(&[0]), l(&[1]));
        assert_eq!(prefix(&od, &l(&[2])).to_string(), "[2,0] -> [2,1]");
        assert_eq!(suffix(&od).to_string(), "[0] -> [1,0]");
        let od2 = Od::new(l(&[1]), l(&[2]));
        assert_eq!(transitivity(&od, &od2).unwrap().to_string(), "[0] -> [2]");
        assert!(transitivity(&od2, &od).is_none());
        assert_eq!(
            normalize(&Od::new(l(&[0, 1, 0]), l(&[2, 2]))).to_string(),
            "[0,1] -> [2]"
        );
    }

    /// Soundness: on random instances, whenever the premises of a rule
    /// hold, the rule's conclusion holds too.
    #[test]
    fn rules_are_sound_on_random_data() {
        for seed in 0..30u64 {
            let rel = random_relation(seed, 12, 3, 3);
            let lists = [
                l(&[0]),
                l(&[1]),
                l(&[2]),
                l(&[0, 1]),
                l(&[1, 2]),
                l(&[2, 0]),
                l(&[0, 1, 2]),
            ];
            for x in &lists {
                for y in &lists {
                    let premise = Od::new(x.clone(), y.clone());
                    if !check_od_pairwise(&rel, &premise.lhs, &premise.rhs) {
                        continue;
                    }
                    // Suffix.
                    let s = suffix(&premise);
                    assert!(
                        check_od_pairwise(&rel, &s.lhs, &s.rhs),
                        "suffix unsound: {premise} => {s} (seed {seed})"
                    );
                    // Prefix with each single attribute.
                    for z in 0..3 {
                        let p = prefix(&premise, &AttrList::single(z));
                        assert!(
                            check_od_pairwise(&rel, &p.lhs, &p.rhs),
                            "prefix unsound: {premise} => {p} (seed {seed})"
                        );
                    }
                    // Normalization in both directions.
                    let n = normalize(&premise);
                    assert!(check_od_pairwise(&rel, &n.lhs, &n.rhs));
                }
            }
            // Reflexivity is unconditionally valid.
            for refl in reflexivity(&l(&[0, 1, 2])) {
                assert!(check_od_pairwise(&rel, &refl.lhs, &refl.rhs));
            }
        }
    }

    #[test]
    fn transitivity_sound_on_random_data() {
        for seed in 0..30u64 {
            let rel = random_relation(seed, 10, 3, 2);
            let lists = [l(&[0]), l(&[1]), l(&[2]), l(&[0, 1]), l(&[1, 2])];
            for x in &lists {
                for y in &lists {
                    for z in &lists {
                        let a = Od::new(x.clone(), y.clone());
                        let b = Od::new(y.clone(), z.clone());
                        if check_od_pairwise(&rel, &a.lhs, &a.rhs)
                            && check_od_pairwise(&rel, &b.lhs, &b.rhs)
                        {
                            let t = transitivity(&a, &b).unwrap();
                            assert!(
                                check_od_pairwise(&rel, &t.lhs, &t.rhs),
                                "transitivity unsound (seed {seed}): {a}, {b} => {t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_3_8_equivalence_on_random_data() {
        use crate::check::check_ocd;
        for seed in 0..50u64 {
            let rel = random_relation(seed, 10, 2, 3);
            let (x, y) = (l(&[0]), l(&[1]));
            let ocd_holds = check_ocd(&rel, &x, &y).is_valid();
            let od = ocd_as_od(&x, &y);
            let od_holds = check_od_pairwise(&rel, &od.lhs, &od.rhs);
            assert_eq!(ocd_holds, od_holds, "Theorem 3.8 violated at seed {seed}");
        }
    }

    #[test]
    fn downward_closure_theorem_3_6_on_random_data() {
        use crate::check::check_ocd;
        for seed in 0..40u64 {
            let rel = random_relation(seed, 10, 4, 3);
            let (xy, zv) = (l(&[0, 1]), l(&[2, 3]));
            if check_ocd(&rel, &xy, &zv).is_valid() {
                for (px, pz) in ocd_downward_closure(&xy, &zv) {
                    assert!(
                        check_ocd(&rel, &px, &pz).is_valid(),
                        "downward closure violated at seed {seed}: {px} ~ {pz}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_9_pruning_rule_on_random_data() {
        use crate::check::check_ocd;
        // X -> Y valid  ==>  XZ ~ Y valid for any fresh Z.
        for seed in 0..60u64 {
            let rel = random_relation(seed, 10, 3, 2);
            let (x, y, z) = (l(&[0]), l(&[1]), 2usize);
            if check_od_pairwise(&rel, &x, &y) {
                let xz = x.with_appended(z);
                assert!(
                    check_ocd(&rel, &xz, &y).is_valid(),
                    "Theorem 3.9 violated at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn closure_recovers_transitive_chain() {
        let mut closure = OdClosure::new(vec![0, 1, 2], 2);
        closure.insert(Od::new(l(&[0]), l(&[1])));
        closure.insert(Od::new(l(&[1]), l(&[2])));
        closure.saturate();
        assert!(closure.contains(&Od::new(l(&[0]), l(&[2]))));
        // Suffix consequence: [0] -> [1,0].
        assert!(closure.contains(&Od::new(l(&[0]), l(&[1, 0]))));
        // Reflexivity consequence: [1,0] -> [1].
        assert!(closure.contains(&Od::new(l(&[1, 0]), l(&[1]))));
        assert!(!closure.is_empty());
    }

    #[test]
    fn closure_derives_order_equivalence_consequences() {
        // From A -> B and B -> A, the closure should contain AB <-> BA
        // (both directions), the Replace-style consequences.
        let mut closure = OdClosure::new(vec![0, 1], 2);
        closure.insert(Od::new(l(&[0]), l(&[1])));
        closure.insert(Od::new(l(&[1]), l(&[0])));
        closure.saturate();
        assert!(closure.contains(&Od::new(l(&[0, 1]), l(&[1, 0]))));
        assert!(closure.contains(&Od::new(l(&[1, 0]), l(&[0, 1]))));
        assert!(closure.contains(&Od::new(l(&[0]), l(&[1, 0]))));
    }

    #[test]
    fn shift_and_replace_are_sound_on_random_data() {
        use crate::check::check_od_pairwise;
        for seed in 0..30u64 {
            let rel = random_relation(seed, 12, 3, 3);
            let (y, z, x) = (l(&[0]), l(&[1]), l(&[2]));
            // Shift: premise Y <-> Z.
            if check_od_pairwise(&rel, &y, &z) && check_od_pairwise(&rel, &z, &y) {
                for od in shift(&y, &z, &x) {
                    assert!(
                        check_od_pairwise(&rel, &od.lhs, &od.rhs),
                        "shift unsound at seed {seed}: {od}"
                    );
                }
            }
            // Replace: premise a <-> b plus an OD mentioning a.
            let (a, b) = (0usize, 1usize);
            let a_l = AttrList::single(a);
            let b_l = AttrList::single(b);
            if check_od_pairwise(&rel, &a_l, &b_l) && check_od_pairwise(&rel, &b_l, &a_l) {
                let od = Od::new(l(&[a, 2]), l(&[2]));
                if check_od_pairwise(&rel, &od.lhs, &od.rhs) {
                    let replaced = replace_attr(&od, a, b);
                    assert!(
                        check_od_pairwise(&rel, &replaced.lhs, &replaced.rhs),
                        "replace unsound at seed {seed}: {od} => {replaced}"
                    );
                }
            }
        }
    }

    #[test]
    fn replace_substitutes_all_occurrences() {
        let od = Od::new(l(&[0, 2, 0]), l(&[0, 1]));
        assert_eq!(replace_attr(&od, 0, 5).to_string(), "[5,2,5] -> [5,1]");
    }

    #[test]
    fn closure_respects_length_bound() {
        let mut closure = OdClosure::new(vec![0, 1, 2, 3], 2);
        closure.insert(Od::new(l(&[0]), l(&[1])));
        closure.saturate();
        for od in &closure.known {
            assert!(od.lhs.len() <= 2 && od.rhs.len() <= 2);
        }
    }
}
