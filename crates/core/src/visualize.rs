//! Dump/visualize split: render a [`SearchSnapshot`] as a GraphViz DOT
//! lattice (`ocdd dump-dot`), modeled on OxiDD's `oxidd-dump` — the dump
//! carries the raw search state, this module turns it into a picture,
//! and neither needs the other to exist.
//!
//! The graph is the pruned candidate lattice at the dumped boundary:
//!
//! * **valid** nodes (solid) — candidates whose OCD check succeeded, with
//!   the OD-direction verdicts (`X→Y`, `Y→X`) in the label;
//! * **pruned** nodes (gray, dashed) — candidates checked and found
//!   invalid, whose whole subtree Theorem 3.7 removed (present when the
//!   dump was taken with [`crate::CheckpointPolicy::record_pruned`]);
//! * **pending** nodes (blue, dotted) — the frontier, not yet checked;
//! * edges connect each candidate to the parent it extends (one attribute
//!   shorter on one side).
//!
//! The graph label carries the dump's termination annotation (or
//! `running` for a live boundary), level, check counter, and manifest
//! hash, so a rendered lattice is self-describing.

use crate::snapshot::{CandidatePair, SearchSnapshot};
use ocdd_relation::{ColumnId, Relation};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a string for a double-quoted DOT string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render one attribute list, as column names when `rel` is given and the
/// ids are in range, as ids otherwise.
fn attr_list(ids: &[ColumnId], rel: Option<&Relation>) -> String {
    let parts: Vec<String> = ids
        .iter()
        .map(|&c| match rel {
            Some(r) if c < r.num_columns() => escape(&r.meta(c).name),
            _ => c.to_string(),
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Node verdict, in display order of severity.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Valid,
    Pruned,
    Pending,
}

/// Parents of a candidate in the lattice: drop the last attribute of
/// either side (children only ever append, Algorithm 3).
fn parents(pair: &CandidatePair) -> Vec<(Vec<ColumnId>, Vec<ColumnId>)> {
    let mut out = Vec::new();
    if pair.x.len() > 1 {
        let mut x = pair.x.clone();
        x.pop();
        out.push((x, pair.y.clone()));
    }
    if pair.y.len() > 1 {
        let mut y = pair.y.clone();
        y.pop();
        out.push((pair.x.clone(), y));
    }
    out
}

/// Render a dump as a GraphViz DOT digraph of the pruned candidate
/// lattice; see the module docs for the node classes. Pass the original
/// relation to resolve column ids to names (the CLI's `dump-dot --csv`);
/// without it, nodes show raw ids.
pub fn snapshot_to_dot(snap: &SearchSnapshot, rel: Option<&Relation>) -> String {
    // Node order: valid OCDs, then pruned, then the pending frontier —
    // first writer wins, so a candidate that is both emitted and on the
    // frontier (impossible today, defensive anyway) renders once.
    let mut index: HashMap<(&[ColumnId], &[ColumnId]), usize> = HashMap::new();
    let mut nodes: Vec<(&CandidatePair, Verdict)> = Vec::new();
    let classes: [(&[CandidatePair], Verdict); 3] = [
        (&snap.ocds, Verdict::Valid),
        (&snap.pruned, Verdict::Pruned),
        (&snap.frontier, Verdict::Pending),
    ];
    for (pairs, verdict) in classes {
        for pair in pairs {
            index.entry((&pair.x, &pair.y)).or_insert_with(|| {
                nodes.push((pair, verdict));
                nodes.len() - 1
            });
        }
    }
    // OD directions of the valid nodes, for the per-node verdict label.
    let ods: HashMap<(&[ColumnId], &[ColumnId]), ()> = snap
        .ods
        .iter()
        .map(|p| ((p.x.as_slice(), p.y.as_slice()), ()))
        .collect();

    let mut out = String::new();
    out.push_str("digraph ocdd_lattice {\n");
    out.push_str("  rankdir=BT;\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    let termination = snap
        .termination
        .as_ref()
        .map_or_else(|| "running".to_string(), |t| t.label().to_string());
    let _ = writeln!(
        out,
        "  label=\"ocdd checkpoint: level {}, {} checks, termination {}, manifest {:016x}\";",
        snap.level, snap.checks, termination, snap.manifest
    );
    out.push_str("  labelloc=top;\n");

    for (i, (pair, verdict)) in nodes.iter().enumerate() {
        let title = format!("{} ~ {}", attr_list(&pair.x, rel), attr_list(&pair.y, rel));
        let (annot, style) = match verdict {
            Verdict::Valid => {
                let fwd = ods.contains_key(&(pair.x.as_slice(), pair.y.as_slice()));
                let back = ods.contains_key(&(pair.y.as_slice(), pair.x.as_slice()));
                let annot = match (fwd, back) {
                    (true, true) => "ocd, od both ways",
                    (true, false) => "ocd, od X->Y",
                    (false, true) => "ocd, od Y->X",
                    (false, false) => "ocd",
                };
                (annot, "style=solid")
            }
            Verdict::Pruned => ("pruned", "style=dashed, color=gray50, fontcolor=gray50"),
            Verdict::Pending => ("pending", "style=dotted, color=blue3, fontcolor=blue3"),
        };
        let _ = writeln!(out, "  n{i} [label=\"{title}\\n{annot}\", {style}];");
    }

    for (i, (pair, _)) in nodes.iter().enumerate() {
        for (px, py) in parents(pair) {
            if let Some(&p) = index.get(&(px.as_slice(), py.as_slice())) {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TerminationReason;
    use crate::snapshot::{SnapshotConfig, SNAPSHOT_VERSION};
    use ocdd_relation::sort::kernel_stats::KernelCounts;

    fn pair(x: &[usize], y: &[usize]) -> CandidatePair {
        CandidatePair {
            x: x.to_vec(),
            y: y.to_vec(),
        }
    }

    fn snap() -> SearchSnapshot {
        SearchSnapshot {
            version: SNAPSHOT_VERSION,
            manifest: 0xfeed,
            config: SnapshotConfig {
                max_checks: None,
                max_level: None,
                dedup_candidates: true,
                column_reduction: true,
            },
            level: 3,
            frontier: vec![pair(&[0, 2], &[1])],
            branches: Vec::new(),
            failures: Vec::new(),
            ocds: vec![pair(&[0], &[1]), pair(&[0], &[2])],
            ods: vec![pair(&[0], &[2])],
            generated: 4,
            levels: Vec::new(),
            level_capped: false,
            check_budget_hit: false,
            checks: 9,
            elapsed_ms: 1,
            kernels: KernelCounts::default(),
            cache: None,
            approx: None,
            pruned: vec![pair(&[1], &[2])],
            termination: Some(TerminationReason::CheckBudget),
        }
    }

    fn assert_balanced(dot: &str) {
        let mut depth = 0i32;
        for c in dot.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn emits_a_valid_digraph_with_all_node_classes() {
        let dot = snapshot_to_dot(&snap(), None);
        assert!(dot.starts_with("digraph ocdd_lattice {"), "{dot}");
        assert!(dot.ends_with("}\n"));
        assert_balanced(&dot);
        assert!(dot.contains("ocd, od X->Y"), "{dot}");
        assert!(dot.contains("pruned"), "{dot}");
        assert!(dot.contains("pending"), "{dot}");
        assert!(dot.contains("termination check_budget"), "{dot}");
        assert!(dot.contains("level 3"), "{dot}");
    }

    #[test]
    fn frontier_nodes_link_to_their_parents() {
        let dot = snapshot_to_dot(&snap(), None);
        // [0,2] ~ [1] extends [0] ~ [1] (node 0); the frontier candidate is
        // the fourth node written (ocds 0-1, pruned 2, frontier 3).
        assert!(dot.contains("n0 -> n3;"), "{dot}");
    }

    #[test]
    fn names_resolve_through_the_relation() {
        use ocdd_relation::{RelationBuilder, Value};
        let mut b = RelationBuilder::new(vec!["inco\"me", "bracket", "tax"]);
        b.push_row(vec![Value::Int(1), Value::Int(1), Value::Int(1)])
            .unwrap();
        let rel = b.finish();
        let dot = snapshot_to_dot(&snap(), Some(&rel));
        assert!(dot.contains("inco\\\"me"), "escaped name: {dot}");
        assert!(dot.contains("bracket"), "{dot}");
        // Out-of-range ids fall back to numbers rather than panicking.
        let mut wide = snap();
        wide.frontier.push(pair(&[7], &[8]));
        let dot = snapshot_to_dot(&wide, Some(&rel));
        assert!(dot.contains("[7] ~ [8]"), "{dot}");
    }

    #[test]
    fn live_boundary_is_labelled_running() {
        let mut s = snap();
        s.termination = None;
        let dot = snapshot_to_dot(&s, None);
        assert!(dot.contains("termination running"), "{dot}");
    }
}
