//! Candidate checking (§4.3 of the paper).
//!
//! The checker validates an OD candidate `X → Y` by sorting a row index on
//! `X` (`generateIndex`, Algorithm 2) and scanning adjacent rows. Because
//! the index groups `X`-equal rows contiguously and the lexicographic order
//! on `Y` is total, a single adjacent-pair scan classifies the candidate:
//!
//! * a pair with equal `X` but different `Y` is a **split** (the functional
//!   dependency component is violated, Theorem 2.5 terminology);
//! * a pair with strictly increasing `X` but decreasing `Y` is a **swap**
//!   (the order compatibility component is violated);
//! * otherwise the OD holds.
//!
//! An OCD candidate `X ~ Y` is validated with the *single* OD check
//! `XY → YX` (Theorem 4.1). Ties on `XY` imply equality on every attribute
//! of `X` and `Y`, so an OCD check can only produce `Valid` or `Swap`.
//!
//! The scan exits early at the first violation (the paper's early
//! termination), so invalid candidates are usually much cheaper than valid
//! ones. Worst case is `O(m log m + m·|Y|)` comparisons for `m` rows.

use crate::deps::AttrList;
use crate::shared_cache::{EpochPrefixCache, EpochSnapshot, SharedPrefixCache};
use ocdd_relation::scan;
use ocdd_relation::sort::{cmp_rows, refine_index, sort_index_by};
use ocdd_relation::{ColumnId, Relation};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of checking an OD candidate `X → Y` against an instance, with a
/// witness pair of rows for violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The dependency holds on the instance.
    Valid,
    /// Split: the witness rows agree on `X` but differ on `Y`
    /// (`X → Y` as an FD over sets is violated).
    Split {
        /// First witness row id.
        row_a: u32,
        /// Second witness row id.
        row_b: u32,
    },
    /// Swap: the witness rows strictly increase on `X` but strictly
    /// decrease on `Y`.
    Swap {
        /// First witness row id (smaller on `X`).
        row_a: u32,
        /// Second witness row id.
        row_b: u32,
    },
}

impl CheckOutcome {
    /// True when the dependency holds.
    #[inline]
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckOutcome::Valid)
    }
}

/// Classify the violating adjacent pair `(row_a, row_b)` that a scan
/// kernel found: the index is `lhs`-sorted, so `lhs` compares `Equal`
/// (split) or `Less` (the `rhs` must have decreased — swap).
fn classify_violation(rel: &Relation, lhs: &[ColumnId], row_a: u32, row_b: u32) -> CheckOutcome {
    if cmp_rows(rel, lhs, row_a as usize, row_b as usize) == Ordering::Equal {
        CheckOutcome::Split { row_a, row_b }
    } else {
        CheckOutcome::Swap { row_a, row_b }
    }
}

/// Classify adjacent pairs of `index` (pre-sorted by `lhs`) against `rhs`,
/// dispatching to the width-adaptive scan kernels ([`scan::od_scan`]):
/// blockwise branchless compares over the narrowed code mirrors, scalar
/// below one block. The kernel reports the first violating pair position;
/// classification into split/swap is one extra `lhs` comparison.
// lint: allow(panic-reachability, od_scan returns i < index.len() - 1, so index[i] and index[i + 1] are in bounds)
fn scan_sorted(rel: &Relation, lhs: &[ColumnId], rhs: &[ColumnId], index: &[u32]) -> CheckOutcome {
    match scan::od_scan(rel, lhs, rhs, index) {
        None => CheckOutcome::Valid,
        Some(i) => classify_violation(rel, lhs, index[i], index[i + 1]),
    }
}

/// Scalar oracle for `scan_sorted`: the per-pair `cmp_rows` walk
/// ([`scan::od_scan_scalar`]), kept public for differential tests and the
/// pinned-scalar bench configs. Identical `CheckOutcome` — including
/// witness rows — to the dispatched kernels on every input.
// lint: allow(panic-reachability, od_scan_scalar returns i < index.len() - 1, so index[i] and index[i + 1] are in bounds)
pub fn scan_sorted_scalar(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> CheckOutcome {
    match scan::od_scan_scalar(rel, lhs, rhs, index) {
        None => CheckOutcome::Valid,
        Some(i) => classify_violation(rel, lhs, index[i], index[i + 1]),
    }
}

/// Split-only early-exit scan over `index` (pre-sorted by `lhs`): false
/// iff some pair of `lhs`-tied rows differs on `rhs`. Adjacent pairs
/// suffice — the index groups `lhs`-ties contiguously, and if every
/// adjacent pair inside a tie group agrees on `rhs`, all rows of the group
/// do. Sound as a *full* OD check only when a swap is impossible; see
/// [`check_od_after_ocd`]. Dispatches like [`scan_sorted`].
fn scan_sorted_splits_only(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> bool {
    scan::split_scan(rel, lhs, rhs, index).is_none()
}

/// Scalar oracle for the splits-only scan (`scan_sorted_splits_only`,
/// i.e. [`scan::split_scan_scalar`] plus outcome mapping), public for
/// differential tests and the pinned-scalar bench configs.
pub fn scan_sorted_splits_only_scalar(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> bool {
    scan::split_scan_scalar(rel, lhs, rhs, index).is_none()
}

/// Check the OD candidate `lhs → rhs` by index sort + adjacent scan.
pub fn check_od(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> CheckOutcome {
    let index = sort_index_by(rel, lhs.as_slice());
    scan_sorted(rel, lhs.as_slice(), rhs.as_slice(), &index)
}

/// [`check_od`] pinned to the scalar scan kernel: the historical per-pair
/// checker, kept as the differential oracle and the `resort_radix`
/// bench backend's fixed semantics.
pub fn check_od_scalar(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> CheckOutcome {
    let index = sort_index_by(rel, lhs.as_slice());
    scan_sorted_scalar(rel, lhs.as_slice(), rhs.as_slice(), &index)
}

/// Fused direction check: decide the OD `lhs → rhs` **given that the OCD
/// `lhs ~ rhs` already passed** on the same instance.
///
/// Under a valid OCD a swap is impossible: rows with `lhs` strictly
/// increasing and `rhs` strictly decreasing would also order
/// `lhs·rhs` against `rhs·lhs` inconsistently, contradicting the single
/// check `XY → YX` of Theorem 4.1. The OD can then only fail by *split*,
/// so a split-only early-exit scan over the `lhs`-sorted index decides it
/// — same verdict as [`check_od`], typically fewer column comparisons
/// (only `lhs`-tied pairs ever touch `rhs`). The search calls this for
/// both directions of every candidate that survives its OCD check.
pub fn check_od_after_ocd(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> bool {
    let index = sort_index_by(rel, lhs.as_slice());
    scan_sorted_splits_only(rel, lhs.as_slice(), rhs.as_slice(), &index)
}

/// Check the OCD candidate `x ~ y` via the single OD check `XY → YX`
/// (Theorem 4.1).
pub fn check_ocd(rel: &Relation, x: &AttrList, y: &AttrList) -> CheckOutcome {
    let xy = x.concat(y);
    let yx = y.concat(x);
    check_od(rel, &xy, &yx)
}

/// A memoizing checker that caches sorted indexes per LHS prefix.
///
/// The faithful algorithm re-sorts the relation for every candidate. Since
/// a candidate's LHS `XY` shares the prefix `X` with its parent's `X…`
/// lists, caching the permutation for each prefix and *refining* it
/// ([`refine_index`]) amortizes most of the sort. This is the optimization
/// the paper leaves as out of scope (§5.3.1, "sorted partitions"); it is
/// off by default and measured by the ablation bench.
///
/// The store is either worker-private (a plain `HashMap`, unbounded) or a
/// run-wide [`SharedPrefixCache`] ([`SortCache::with_shared`]): in the
/// parallel modes the shared tier lets workers reuse each other's sorted
/// prefixes and bounds memory to the configured byte budget.
pub struct SortCache<'r> {
    rel: &'r Relation,
    cache: HashMap<Vec<ColumnId>, Arc<Vec<u32>>>,
    shared: Option<Arc<SharedPrefixCache<Vec<u32>>>>,
    epoch: Option<EpochTier<Vec<u32>>>,
    /// Number of cache hits (full or prefix), for ablation reporting.
    pub hits: u64,
    /// Number of full sorts performed.
    pub misses: u64,
}

/// Per-worker state of the epoch-published cache mode: an immutable
/// snapshot refreshed at level boundaries, plus a local insert buffer
/// drained (in insertion order, for deterministic publish stamps) when the
/// driver publishes between levels. Lookups take no lock; lookup counters
/// are flushed alongside the buffer.
pub(crate) struct EpochTier<V> {
    cache: Arc<EpochPrefixCache<V>>,
    snapshot: EpochSnapshot<V>,
    pending: HashMap<Vec<ColumnId>, Arc<V>>,
    pending_order: Vec<Vec<ColumnId>>,
    flushed_hits: u64,
    flushed_misses: u64,
}

impl<V: crate::shared_cache::CacheWeight> EpochTier<V> {
    pub(crate) fn new(cache: Arc<EpochPrefixCache<V>>) -> EpochTier<V> {
        let snapshot = cache.snapshot();
        EpochTier {
            cache,
            snapshot,
            pending: HashMap::new(),
            pending_order: Vec::new(),
            flushed_hits: 0,
            flushed_misses: 0,
        }
    }

    /// Refresh the snapshot — call when a new level starts.
    pub(crate) fn begin_level(&mut self) {
        self.snapshot = self.cache.snapshot();
    }

    /// Exact lookup across the local buffer and the snapshot.
    pub(crate) fn get(&self, key: &[ColumnId]) -> Option<Arc<V>> {
        if let Some(v) = self.pending.get(key) {
            return Some(Arc::clone(v));
        }
        self.snapshot.get(key)
    }

    /// Longest cached *proper* prefix of `key`, preferring the buffer at
    /// equal length.
    // lint: allow(panic-reachability, &key[..len] takes proper prefixes with len < key.len() from the loop range)
    pub(crate) fn longest_prefix(&self, key: &[ColumnId]) -> Option<(usize, Arc<V>)> {
        // lint: allow(unprobed-loop, proper-prefix scan bounded by one candidate's attribute-list length)
        for len in (1..key.len()).rev() {
            if let Some(v) = self.pending.get(&key[..len]) {
                return Some((len, Arc::clone(v)));
            }
            if let Some(v) = self.snapshot.get(&key[..len]) {
                return Some((len, v));
            }
        }
        None
    }

    pub(crate) fn buffer(&mut self, key: Vec<ColumnId>, value: Arc<V>) {
        if self.pending.insert(key.clone(), value).is_none() {
            self.pending_order.push(key);
        }
    }

    /// Drain the local buffer into the shared cache (one publish) and
    /// flush the lookup-counter deltas. Called by the driver between
    /// levels, on the driver thread — never on the check hot path.
    pub(crate) fn publish(&mut self, hits: u64, misses: u64) {
        if !self.pending_order.is_empty() {
            let pending = &mut self.pending;
            self.cache.publish(
                self.pending_order
                    .drain(..)
                    .filter_map(|k| pending.remove(&k).map(|v| (k, v))),
            );
        }
        self.cache
            .record_lookups(hits - self.flushed_hits, misses - self.flushed_misses);
        self.flushed_hits = hits;
        self.flushed_misses = misses;
    }
}

impl<'r> SortCache<'r> {
    /// Create an empty worker-private cache over `rel`.
    pub fn new(rel: &'r Relation) -> SortCache<'r> {
        SortCache {
            rel,
            cache: HashMap::new(),
            shared: None,
            epoch: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Create a cache backed by a run-wide shared store. The private map
    /// is not used: every index lives in (and is evicted from) `shared`.
    pub fn with_shared(
        rel: &'r Relation,
        shared: Arc<SharedPrefixCache<Vec<u32>>>,
    ) -> SortCache<'r> {
        SortCache {
            rel,
            cache: HashMap::new(),
            shared: Some(shared),
            epoch: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Create a cache backed by an epoch-published shared store
    /// ([`EpochPrefixCache`]): reads go to an immutable snapshot (no lock
    /// per check), inserts are buffered locally until
    /// [`SortCache::publish_pending`]. Used by the work-stealing mode.
    pub fn with_epoch(rel: &'r Relation, cache: Arc<EpochPrefixCache<Vec<u32>>>) -> SortCache<'r> {
        SortCache {
            rel,
            cache: HashMap::new(),
            shared: None,
            epoch: Some(EpochTier::new(cache)),
            hits: 0,
            misses: 0,
        }
    }

    /// Refresh the epoch snapshot at a level boundary. No-op for the
    /// private and lock-striped modes.
    pub fn begin_level(&mut self) {
        if let Some(tier) = &mut self.epoch {
            tier.begin_level();
        }
    }

    /// Publish locally-buffered indexes and flush lookup counters to the
    /// epoch cache. No-op for the private and lock-striped modes.
    pub fn publish_pending(&mut self) {
        if let Some(tier) = &mut self.epoch {
            tier.publish(self.hits, self.misses);
        }
    }

    /// Sorted index for `cols`, reusing the longest cached prefix.
    // lint: allow(panic-reachability, longest_prefix returns len < cols.len() by its proper-prefix contract, so both split ranges are in bounds)
    pub fn index_for(&mut self, cols: &[ColumnId]) -> Arc<Vec<u32>> {
        if let Some(tier) = &mut self.epoch {
            if let Some(idx) = tier.get(cols) {
                self.hits += 1;
                return idx;
            }
            let index = match tier.longest_prefix(cols) {
                Some((len, base)) => {
                    self.hits += 1;
                    Arc::new(refine_index(self.rel, &base, &cols[..len], &cols[len..]))
                }
                None => {
                    self.misses += 1;
                    Arc::new(sort_index_by(self.rel, cols))
                }
            };
            tier.buffer(cols.to_vec(), Arc::clone(&index));
            return index;
        }
        if let Some(shared) = &self.shared {
            if let Some(idx) = shared.get(cols) {
                self.hits += 1;
                return idx;
            }
            let index = match shared.longest_prefix(cols) {
                Some((len, base)) => {
                    self.hits += 1;
                    Arc::new(refine_index(self.rel, &base, &cols[..len], &cols[len..]))
                }
                None => {
                    self.misses += 1;
                    Arc::new(sort_index_by(self.rel, cols))
                }
            };
            shared.insert(cols.to_vec(), Arc::clone(&index));
            return index;
        }
        if let Some(idx) = self.cache.get(cols) {
            self.hits += 1;
            return Arc::clone(idx);
        }
        // Longest cached proper prefix.
        let mut best: usize = 0;
        // lint: allow(unprobed-loop, proper-prefix scan bounded by one candidate's attribute-list length)
        for len in (1..cols.len()).rev() {
            if self.cache.contains_key(&cols[..len]) {
                best = len;
                break;
            }
        }
        let index = if best > 0 {
            self.hits += 1;
            let base = Arc::clone(&self.cache[&cols[..best]]);
            Arc::new(refine_index(self.rel, &base, &cols[..best], &cols[best..]))
        } else {
            self.misses += 1;
            Arc::new(sort_index_by(self.rel, cols))
        };
        self.cache.insert(cols.to_vec(), Arc::clone(&index));
        index
    }

    /// Check `lhs → rhs` using the cache.
    pub fn check_od(&mut self, lhs: &AttrList, rhs: &AttrList) -> CheckOutcome {
        let index = self.index_for(lhs.as_slice());
        scan_sorted(self.rel, lhs.as_slice(), rhs.as_slice(), &index)
    }

    /// Check `x ~ y` using the cache (single check `XY → YX`).
    pub fn check_ocd(&mut self, x: &AttrList, y: &AttrList) -> CheckOutcome {
        let xy = x.concat(y);
        let yx = y.concat(x);
        self.check_od(&xy, &yx)
    }

    /// Fused direction check after a validated OCD — cached counterpart of
    /// [`check_od_after_ocd`]: reuses (and warms) the prefix cache for the
    /// `lhs` index, then runs the split-only scan.
    pub fn check_od_after_ocd(&mut self, lhs: &AttrList, rhs: &AttrList) -> bool {
        let index = self.index_for(lhs.as_slice());
        scan_sorted_splits_only(self.rel, lhs.as_slice(), rhs.as_slice(), &index)
    }
}

/// Reference checker: validate `lhs → rhs` by the pairwise Definition 2.2,
/// literally — for every ordered pair of rows `(p, q)`, `p ⪯_lhs q` must
/// imply `p ⪯_rhs q`.
///
/// This is the `O(m²·(|lhs| + |rhs|))` brute-force oracle used by tests and
/// the ground-truth baseline; it shares no code with the sorted-scan
/// checker, which is exactly what makes it a useful differential target.
/// The diagonal `p == q` is skipped: a row always satisfies `p ⪯ p` on
/// both sides, so it can never witness a violation.
pub fn check_od_pairwise(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> bool {
    let m = rel.num_rows();
    for p in 0..m {
        for q in 0..m {
            if p == q {
                continue;
            }
            if cmp_rows(rel, lhs.as_slice(), p, q) != Ordering::Greater
                && cmp_rows(rel, rhs.as_slice(), p, q) == Ordering::Greater
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn valid_od_on_monotone_columns() {
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[10, 20, 20, 40])]);
        assert!(check_od(&r, &l(&[0]), &l(&[1])).is_valid());
        // b -> a fails: b has a tie (rows 1,2) where a differs -> split.
        assert!(matches!(
            check_od(&r, &l(&[1]), &l(&[0])),
            CheckOutcome::Split { .. }
        ));
    }

    #[test]
    fn swap_detected_with_witness() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 3, 2])]);
        match check_od(&r, &l(&[0]), &l(&[1])) {
            CheckOutcome::Swap { row_a, row_b } => {
                // Witness rows must actually form a swap.
                assert!(r.code(row_a as usize, 0) < r.code(row_b as usize, 0));
                assert!(r.code(row_a as usize, 1) > r.code(row_b as usize, 1));
            }
            other => panic!("expected swap, got {other:?}"),
        }
    }

    #[test]
    fn split_detected_with_witness() {
        let r = rel(&[("a", &[1, 1, 2]), ("b", &[5, 6, 7])]);
        match check_od(&r, &l(&[0]), &l(&[1])) {
            CheckOutcome::Split { row_a, row_b } => {
                assert_eq!(r.code(row_a as usize, 0), r.code(row_b as usize, 0));
                assert_ne!(r.code(row_a as usize, 1), r.code(row_b as usize, 1));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn ocd_check_matches_definition() {
        // income ~ savings from Table 1 of the paper.
        let r = rel(&[
            ("income", &[35_000, 40_000, 40_000, 55_000, 60_000, 80_000]),
            ("savings", &[3_000, 4_000, 3_800, 6_500, 6_500, 10_000]),
        ]);
        // income ~ savings fails: rows 2,3 (40000,3800),(40000,4000)? No —
        // check: XY -> YX must hold. Sorting by (income,savings):
        // (35000,3000),(40000,3800),(40000,4000),(55000,6500),(60000,6500),(80000,10000)
        // (savings,income) sequence: (3000,35000),(3800,40000),(4000,40000),
        // (6500,55000),(6500,60000),(10000,80000) — non-decreasing => valid.
        assert!(check_ocd(&r, &l(&[0]), &l(&[1])).is_valid());
    }

    #[test]
    fn ocd_never_reports_split() {
        // a and b have a genuine swap.
        let r = rel(&[("a", &[1, 2]), ("b", &[2, 1])]);
        match check_ocd(&r, &l(&[0]), &l(&[1])) {
            CheckOutcome::Swap { .. } => {}
            other => panic!("expected swap, got {other:?}"),
        }
    }

    #[test]
    fn theorem_4_1_single_check_equals_both_directions() {
        // X ~ Y  iff  XY -> YX  iff both XY -> YX and YX -> XY.
        let cases: Vec<Relation> = vec![
            rel(&[("a", &[1, 2, 3, 3]), ("b", &[4, 5, 6, 7])]),
            rel(&[("a", &[1, 2, 3]), ("b", &[3, 2, 1])]),
            rel(&[("a", &[1, 1, 2]), ("b", &[9, 9, 1])]),
        ];
        for r in &cases {
            let (x, y) = (l(&[0]), l(&[1]));
            let xy = x.concat(&y);
            let yx = y.concat(&x);
            let fwd = check_od(r, &xy, &yx).is_valid();
            let bwd = check_od(r, &yx, &xy).is_valid();
            assert_eq!(fwd, bwd, "Theorem 4.1: the two directions must agree");
            assert_eq!(check_ocd(r, &x, &y).is_valid(), fwd && bwd);
        }
    }

    #[test]
    fn fast_checker_matches_pairwise_reference() {
        // Exhaustive over small relations: every 2-column relation with
        // values in {0,1,2} and 4 rows.
        let mut count = 0;
        for bits_a in 0..81u32 {
            for bits_b in [0u32, 7, 27, 45, 80] {
                let dec = |mut bits: u32| -> Vec<i64> {
                    let mut v = Vec::new();
                    for _ in 0..4 {
                        v.push((bits % 3) as i64);
                        bits /= 3;
                    }
                    v
                };
                let (va, vb) = (dec(bits_a), dec(bits_b));
                let r = rel(&[("a", &va), ("b", &vb)]);
                for (x, y) in [
                    (l(&[0]), l(&[1])),
                    (l(&[1]), l(&[0])),
                    (l(&[0, 1]), l(&[1, 0])),
                ] {
                    assert_eq!(
                        check_od(&r, &x, &y).is_valid(),
                        check_od_pairwise(&r, &x, &y),
                        "mismatch on {va:?} {vb:?} for {x} -> {y}"
                    );
                    count += 1;
                }
            }
        }
        assert!(count > 1000);
    }

    #[test]
    fn empty_and_singleton_relations_are_trivially_valid() {
        let r = rel(&[("a", &[]), ("b", &[])]);
        assert!(check_od(&r, &l(&[0]), &l(&[1])).is_valid());
        let r = rel(&[("a", &[5]), ("b", &[7])]);
        assert!(check_od(&r, &l(&[0]), &l(&[1])).is_valid());
        assert!(check_ocd(&r, &l(&[0]), &l(&[1])).is_valid());
    }

    #[test]
    fn empty_lhs_orders_only_constants() {
        let r = rel(&[("a", &[1, 2]), ("c", &[7, 7])]);
        // [] -> [c] holds (constant), [] -> [a] fails (split on empty list).
        assert!(check_od(&r, &AttrList::empty(), &l(&[1])).is_valid());
        assert!(matches!(
            check_od(&r, &AttrList::empty(), &l(&[0])),
            CheckOutcome::Split { .. }
        ));
    }

    #[test]
    fn sort_cache_agrees_with_uncached() {
        let r = rel(&[
            ("a", &[3, 1, 4, 1, 5, 9, 2, 6]),
            ("b", &[2, 7, 1, 8, 2, 8, 1, 8]),
            ("c", &[1, 1, 2, 2, 3, 3, 4, 4]),
        ]);
        let mut cache = SortCache::new(&r);
        let lists = [
            (l(&[0]), l(&[1])),
            (l(&[0, 1]), l(&[2])),
            (l(&[0, 2]), l(&[1])),
            (l(&[2, 0]), l(&[1])),
            (l(&[0, 1]), l(&[2])), // repeat: full cache hit
        ];
        for (x, y) in &lists {
            assert_eq!(cache.check_od(x, y), check_od(&r, x, y));
            assert_eq!(
                cache.check_ocd(x, y).is_valid(),
                check_ocd(&r, x, y).is_valid()
            );
        }
        assert!(cache.hits >= 1, "prefix reuse expected");
    }

    #[test]
    fn shared_sort_cache_agrees_with_uncached() {
        let r = rel(&[
            ("a", &[3, 1, 4, 1, 5, 9, 2, 6]),
            ("b", &[2, 7, 1, 8, 2, 8, 1, 8]),
            ("c", &[1, 1, 2, 2, 3, 3, 4, 4]),
        ]);
        let shared = Arc::new(SharedPrefixCache::new(1 << 20));
        let mut one = SortCache::with_shared(&r, Arc::clone(&shared));
        let mut two = SortCache::with_shared(&r, Arc::clone(&shared));
        let lists = [
            (l(&[0]), l(&[1])),
            (l(&[0, 1]), l(&[2])),
            (l(&[0, 2]), l(&[1])),
            (l(&[2, 0]), l(&[1])),
        ];
        for (x, y) in &lists {
            assert_eq!(one.check_od(x, y), check_od(&r, x, y));
        }
        // The second worker reuses everything the first one built.
        for (x, y) in &lists {
            assert_eq!(two.check_od(x, y), check_od(&r, x, y));
        }
        assert_eq!(two.misses, 0, "all prefixes were already shared");
        assert!(shared.stats().hits > 0);
    }

    #[test]
    fn epoch_sort_cache_agrees_and_shares_across_publishes() {
        let r = rel(&[
            ("a", &[3, 1, 4, 1, 5, 9, 2, 6]),
            ("b", &[2, 7, 1, 8, 2, 8, 1, 8]),
            ("c", &[1, 1, 2, 2, 3, 3, 4, 4]),
        ]);
        let cache = Arc::new(EpochPrefixCache::new(1 << 20));
        let mut one = SortCache::with_epoch(&r, Arc::clone(&cache));
        let mut two = SortCache::with_epoch(&r, Arc::clone(&cache));
        let lists = [
            (l(&[0]), l(&[1])),
            (l(&[0, 1]), l(&[2])),
            (l(&[0, 2]), l(&[1])),
            (l(&[2, 0]), l(&[1])),
        ];
        for (x, y) in &lists {
            assert_eq!(one.check_od(x, y), check_od(&r, x, y));
        }
        // Unpublished work is invisible to the sibling worker …
        assert_eq!(cache.snapshot().len(), 0);
        one.publish_pending();
        two.begin_level();
        // … and fully visible after publish + snapshot refresh.
        for (x, y) in &lists {
            assert_eq!(two.check_od(x, y), check_od(&r, x, y));
        }
        assert_eq!(two.misses, 0, "all prefixes arrived via the snapshot");
        two.publish_pending();
        let s = cache.stats();
        assert_eq!(s.misses, one.misses);
        assert_eq!(s.hits, one.hits + two.hits);
    }

    #[test]
    fn fused_direction_check_matches_full_check_after_valid_ocd() {
        // Exhaustive over small two-column relations: whenever the OCD
        // x ~ y holds, the split-only direction check must agree with the
        // full checker in both directions.
        let mut fused_cases = 0;
        for bits_a in 0..81u32 {
            for bits_b in 0..81u32 {
                let dec = |mut bits: u32| -> Vec<i64> {
                    let mut v = Vec::new();
                    for _ in 0..4 {
                        v.push((bits % 3) as i64);
                        bits /= 3;
                    }
                    v
                };
                let r = rel(&[("a", &dec(bits_a)), ("b", &dec(bits_b))]);
                let (x, y) = (l(&[0]), l(&[1]));
                if !check_ocd(&r, &x, &y).is_valid() {
                    continue;
                }
                fused_cases += 1;
                assert_eq!(
                    check_od_after_ocd(&r, &x, &y),
                    check_od(&r, &x, &y).is_valid(),
                    "x→y on {bits_a}/{bits_b}"
                );
                assert_eq!(
                    check_od_after_ocd(&r, &y, &x),
                    check_od(&r, &y, &x).is_valid(),
                    "y→x on {bits_a}/{bits_b}"
                );
                let mut cache = SortCache::new(&r);
                assert_eq!(
                    cache.check_od_after_ocd(&x, &y),
                    check_od(&r, &x, &y).is_valid()
                );
            }
        }
        assert!(fused_cases > 500, "enough OCD-valid cases exercised");
    }

    #[test]
    fn pairwise_oracle_trivial_on_diagonal_only_relations() {
        // Single-row relation: the only pair is the diagonal, so any OD
        // holds vacuously.
        let r = rel(&[("a", &[3]), ("b", &[9])]);
        assert!(check_od_pairwise(&r, &l(&[0]), &l(&[1])));
        assert!(check_od_pairwise(&r, &l(&[1]), &l(&[0])));
    }

    /// Deterministic pseudo-random integer columns (xorshift).
    fn random_columns(cols: usize, rows: usize, domains: &[i64], seed: u64) -> Relation {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        Relation::from_columns(
            (0..cols)
                .map(|c| {
                    let d = domains[c % domains.len()];
                    (
                        format!("c{c}"),
                        (0..rows)
                            .map(|_| Value::Int((next() % d as u64) as i64))
                            .collect(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    // Inputs beyond one block force the blockwise (or SIMD) path; the
    // full CheckOutcome — including witness rows — must be byte-identical
    // to the pinned scalar oracle, and the fused split-only scan must
    // agree with its oracle on the same index.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn dispatched_kernels_match_scalar_oracle_with_witnesses(
            seed in 0u64..1 << 32,
            rows in 2usize..260,
        ) {
            use proptest::prop_assert_eq;
            let r = random_columns(3, rows, &[3, 40, 5000], seed);
            for (x, y) in [
                (l(&[0]), l(&[1])),
                (l(&[1]), l(&[2])),
                (l(&[2]), l(&[0])),
                (l(&[0, 1]), l(&[2])),
                (l(&[0, 1, 2]), l(&[2, 1, 0])),
            ] {
                prop_assert_eq!(check_od(&r, &x, &y), check_od_scalar(&r, &x, &y));
                let index = sort_index_by(&r, x.as_slice());
                prop_assert_eq!(
                    scan_sorted_splits_only(&r, x.as_slice(), y.as_slice(), &index),
                    scan_sorted_splits_only_scalar(&r, x.as_slice(), y.as_slice(), &index)
                );
            }
        }
    }

    #[test]
    fn nulls_first_semantics_in_checks() {
        let r = Relation::from_columns(vec![
            (
                "a".to_string(),
                vec![Value::Null, Value::Int(1), Value::Int(2)],
            ),
            (
                "b".to_string(),
                vec![Value::Int(0), Value::Int(5), Value::Int(9)],
            ),
        ])
        .unwrap();
        // NULL sorts first and b is increasing along that order.
        assert!(check_od(&r, &l(&[0]), &l(&[1])).is_valid());
    }
}
