//! Incremental discovery over growing inputs — the paper's stated future
//! work ("we would like to consider dynamic inputs, where additional rows
//! … may be added at runtime", §7).
//!
//! The key observation making appends cheap is **anti-monotonicity**:
//! order dependencies are universally quantified over tuple pairs, so
//! adding rows can only *invalidate* dependencies, never create new ones.
//! An appended batch therefore requires only re-validating the dependencies
//! that currently hold — one sorted scan each — instead of re-running the
//! whole search.
//!
//! Two events break the cheap path and force a full re-run (reported in
//! the returned [`Delta`]):
//!
//! * a **constant column demotes** (gains a second value): dependencies
//!   *involving* it were never searched, so the reduced universe changes;
//! * an **order-equivalence class splits**: the collapsed columns become
//!   distinct search dimensions.
//!
//! Both are detected exactly, and the fallback re-run is itself just
//! [`crate::discover`], so correctness never depends on the fast path.

use crate::check::{check_ocd, check_od};
use crate::config::DiscoveryConfig;
use crate::deps::{Ocd, Od};
use crate::results::DiscoveryResult;
use crate::search::discover;
use ocdd_relation::{Error, Relation, Result, Value};

/// What an append or deletion changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// OCDs invalidated by the new rows.
    pub invalidated_ocds: Vec<Ocd>,
    /// ODs invalidated by the new rows.
    pub invalidated_ods: Vec<Od>,
    /// OCDs that newly hold (row deletion only — appends never create
    /// dependencies).
    pub gained_ocds: Vec<Ocd>,
    /// ODs that newly hold (row deletion only).
    pub gained_ods: Vec<Od>,
    /// Constant columns that gained a second value.
    pub demoted_constants: Vec<usize>,
    /// Equivalence classes that no longer hold in full.
    pub split_classes: Vec<Vec<usize>>,
    /// True when the structural changes forced a full re-discovery.
    pub full_rerun: bool,
}

impl Delta {
    /// True when the change affected no dependency.
    pub fn is_empty(&self) -> bool {
        self.invalidated_ocds.is_empty()
            && self.invalidated_ods.is_empty()
            && self.gained_ocds.is_empty()
            && self.gained_ods.is_empty()
            && self.demoted_constants.is_empty()
            && self.split_classes.is_empty()
    }
}

/// Maintains a discovery result across row appends.
#[derive(Debug)]
pub struct IncrementalDiscovery {
    names: Vec<String>,
    data: Vec<Vec<Value>>, // column-major raw values
    config: DiscoveryConfig,
    relation: Relation,
    result: DiscoveryResult,
}

impl IncrementalDiscovery {
    /// Run the initial discovery over `rel`.
    pub fn new(rel: &Relation, config: DiscoveryConfig) -> IncrementalDiscovery {
        let names: Vec<String> = rel.column_names().iter().map(|s| s.to_string()).collect();
        let data: Vec<Vec<Value>> = (0..rel.num_columns())
            .map(|c| {
                (0..rel.num_rows())
                    .map(|r| rel.value(r, c).clone())
                    .collect()
            })
            .collect();
        let result = discover(rel, &config);
        IncrementalDiscovery {
            names,
            data,
            config,
            relation: rel.clone(),
            result,
        }
    }

    /// The current dependency state.
    pub fn result(&self) -> &DiscoveryResult {
        &self.result
    }

    /// The current relation (original plus every appended batch).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Append a batch of rows and update the dependency state, returning
    /// what changed.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<Delta> {
        for row in &rows {
            if row.len() != self.names.len() {
                return Err(Error::ArityMismatch {
                    expected: self.names.len(),
                    got: row.len(),
                });
            }
        }
        for row in rows {
            for (col, v) in self.data.iter_mut().zip(row) {
                col.push(v);
            }
        }
        // Rebuild the relation: rank codes are global, so appends re-encode.
        let named: Vec<(String, Vec<Value>)> = self
            .names
            .iter()
            .cloned()
            .zip(self.data.iter().cloned())
            .collect();
        self.relation = Relation::from_columns(named)?;

        let mut delta = Delta::default();

        // Structural checks first.
        for &c in &self.result.constants {
            if !self.relation.meta(c).is_constant() {
                delta.demoted_constants.push(c);
            }
        }
        for class in &self.result.equivalence_classes {
            let rep = crate::deps::AttrList::single(class[0]);
            let still_holds = class[1..].iter().all(|&other| {
                let o = crate::deps::AttrList::single(other);
                check_od(&self.relation, &rep, &o).is_valid()
                    && check_od(&self.relation, &o, &rep).is_valid()
            });
            if !still_holds {
                delta.split_classes.push(class.clone());
            }
        }

        if !delta.demoted_constants.is_empty() || !delta.split_classes.is_empty() {
            // The reduced universe changed: the cheap path cannot see
            // dependencies that were previously collapsed away.
            let old = std::mem::take(&mut self.result);
            self.result = discover(&self.relation, &self.config);
            delta.full_rerun = true;
            let new_ocds: std::collections::HashSet<&Ocd> = self.result.ocds.iter().collect();
            let new_ods: std::collections::HashSet<&Od> = self.result.ods.iter().collect();
            delta.invalidated_ocds = old
                .ocds
                .into_iter()
                .filter(|o| !new_ocds.contains(o))
                .collect();
            delta.invalidated_ods = old
                .ods
                .into_iter()
                .filter(|o| !new_ods.contains(o))
                .collect();
            return Ok(delta);
        }

        // Cheap path step 1: re-validate every held dependency on the
        // grown relation. The set of *valid* dependencies is anti-monotone
        // under row addition, so nothing brand new can appear at candidates
        // the original search visited.
        let rel = self.relation.clone();
        let mut invalid_ocds = Vec::new();
        self.result.ocds.retain(|ocd| {
            let ok = check_ocd(&rel, &ocd.lhs, &ocd.rhs).is_valid();
            if !ok {
                invalid_ocds.push(ocd.clone());
            }
            ok
        });
        let mut invalid_ods = Vec::new();
        self.result.ods.retain(|od| {
            let ok = check_od(&rel, &od.lhs, &od.rhs).is_valid();
            if !ok {
                invalid_ods.push(od.clone());
            }
            ok
        });

        // Cheap path step 2: the *minimal* set is not anti-monotone — when
        // an OD `X → Y` breaks, the children `XA ~ Y` that Theorem 3.9
        // pruned become genuine candidates. Resume the search below each
        // invalidated OD whose host OCD still holds (if the OCD broke too,
        // downward closure kills the whole subtree, Theorem 3.7).
        let retained: std::collections::HashSet<Ocd> =
            self.result.ocds.iter().map(Ocd::canonical).collect();
        let universe = self.result.reduced_attributes.clone();
        for od in &invalid_ods {
            // Every emitted OD's host candidate also emitted its OCD (an
            // OD implies its OCD), so a missing host means the OCD broke
            // too and the subtree is dead by downward closure.
            let host = Ocd::new(od.lhs.clone(), od.rhs.clone()).canonical();
            if !retained.contains(&host) {
                continue;
            }
            let (ocds, ods, checks) = crate::search::resume_after_od_invalidation(
                &rel,
                &universe,
                &od.lhs,
                &od.rhs,
                &self.config,
            );
            self.result.ocds.extend(ocds);
            self.result.ods.extend(ods);
            self.result.checks += checks;
        }
        // Canonical order + dedup (resumed subtrees can overlap).
        self.result.ocds.sort_by(|a, b| {
            (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
                b.lhs.len() + b.rhs.len(),
                &b.lhs,
                &b.rhs,
            ))
        });
        self.result.ocds.dedup();
        self.result.ods.sort_by(|a, b| {
            (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
                b.lhs.len() + b.rhs.len(),
                &b.lhs,
                &b.rhs,
            ))
        });
        self.result.ods.dedup();

        delta.invalidated_ocds = invalid_ocds;
        delta.invalidated_ods = invalid_ods;
        Ok(delta)
    }
}

impl IncrementalDiscovery {
    /// Remove the rows at `row_ids` (indices into the current relation)
    /// and update the dependency state.
    ///
    /// Deletion is the dual of appending: dependencies can only be
    /// *gained*, never lost, but a gained OD re-activates Theorem 3.9
    /// pruning in ways a patch-up cannot track cheaply, so deletions run a
    /// full re-discovery and report the difference.
    pub fn remove_rows(&mut self, row_ids: &[usize]) -> Result<Delta> {
        let current_rows = self.data.first().map_or(0, Vec::len);
        for &r in row_ids {
            if r >= current_rows {
                return Err(Error::ColumnOutOfRange {
                    index: r,
                    len: current_rows,
                });
            }
        }
        let drop: std::collections::HashSet<usize> = row_ids.iter().copied().collect();
        for col in self.data.iter_mut() {
            let mut idx = 0usize;
            col.retain(|_| {
                let keep = !drop.contains(&idx);
                idx += 1;
                keep
            });
        }
        let named: Vec<(String, Vec<Value>)> = self
            .names
            .iter()
            .cloned()
            .zip(self.data.iter().cloned())
            .collect();
        self.relation = Relation::from_columns(named)?;

        let old = std::mem::replace(&mut self.result, discover(&self.relation, &self.config));
        let old_ocds: std::collections::HashSet<&Ocd> = old.ocds.iter().collect();
        let old_ods: std::collections::HashSet<&Od> = old.ods.iter().collect();
        let new_ocds: std::collections::HashSet<&Ocd> = self.result.ocds.iter().collect();
        let new_ods: std::collections::HashSet<&Od> = self.result.ods.iter().collect();
        Ok(Delta {
            gained_ocds: self
                .result
                .ocds
                .iter()
                .filter(|o| !old_ocds.contains(o))
                .cloned()
                .collect(),
            gained_ods: self
                .result
                .ods
                .iter()
                .filter(|o| !old_ods.contains(o))
                .cloned()
                .collect(),
            invalidated_ocds: old
                .ocds
                .iter()
                .filter(|o| !new_ocds.contains(o))
                .cloned()
                .collect(),
            invalidated_ods: old
                .ods
                .iter()
                .filter(|o| !new_ods.contains(o))
                .cloned()
                .collect(),
            demoted_constants: Vec::new(),
            split_classes: Vec::new(),
            full_rerun: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::AttrList;
    use ocdd_relation::RelationBuilder;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn consistent_append_changes_nothing() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 1, 2])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert!(inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
        let delta = inc.append_rows(vec![ints(&[4, 2]), ints(&[5, 3])]).unwrap();
        assert!(delta.is_empty(), "{delta:?}");
        assert!(!delta.full_rerun);
        assert!(inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
        assert_eq!(inc.relation().num_rows(), 5);
    }

    #[test]
    fn violating_append_invalidates_exactly_the_broken_od() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 1, 2])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        // (4, 0): a increases but b drops -> swap kills a -> b and a ~ b.
        let delta = inc.append_rows(vec![ints(&[4, 0])]).unwrap();
        assert!(delta
            .invalidated_ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
        assert!(!inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
    }

    #[test]
    fn incremental_state_matches_full_rerun() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let gen_row = |rng: &mut StdRng| -> Vec<Value> {
                (0..3).map(|_| Value::Int(rng.random_range(0..3))).collect()
            };
            let mut b = RelationBuilder::new(vec!["a", "b", "c"]);
            for _ in 0..10 {
                b.push_row(gen_row(&mut rng)).unwrap();
            }
            let initial = b.finish();
            let mut inc = IncrementalDiscovery::new(&initial, DiscoveryConfig::default());
            for _ in 0..3 {
                let batch: Vec<Vec<Value>> = (0..4).map(|_| gen_row(&mut rng)).collect();
                inc.append_rows(batch).unwrap();
            }
            let fresh = discover(inc.relation(), &DiscoveryConfig::default());
            assert_eq!(inc.result().ocds, fresh.ocds, "seed {seed}");
            assert_eq!(inc.result().ods, fresh.ods, "seed {seed}");
        }
    }

    #[test]
    fn constant_demotion_triggers_full_rerun() {
        let r = rel(&[("a", &[1, 2, 3]), ("k", &[7, 7, 7])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert_eq!(inc.result().constants, vec![1]);
        // k gains a second value that keeps it ordered by a.
        let delta = inc.append_rows(vec![ints(&[4, 8])]).unwrap();
        assert!(delta.full_rerun);
        assert_eq!(delta.demoted_constants, vec![1]);
        assert!(inc.result().constants.is_empty());
        // The dependency a -> k is now discoverable and must be present.
        assert!(inc
            .result()
            .ods
            .iter()
            .any(|od| { od.lhs == AttrList::single(0) && od.rhs == AttrList::single(1) }));
    }

    #[test]
    fn class_split_triggers_full_rerun() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[10, 20, 30])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert_eq!(inc.result().equivalence_classes, vec![vec![0, 1]]);
        // Break b -> a but keep a -> b: new rows tie a with differing b? No —
        // tie b with differing a: (4, 40), (5, 40).
        let delta = inc
            .append_rows(vec![ints(&[4, 40]), ints(&[5, 40])])
            .unwrap();
        assert!(delta.full_rerun);
        assert_eq!(delta.split_classes, vec![vec![0, 1]]);
        assert!(inc.result().equivalence_classes.is_empty());
        assert!(inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
        assert!(!inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[1] -> [0]"));
    }

    #[test]
    fn deletion_gains_back_a_broken_dependency() {
        // a -> b holds except for one bad row; deleting it restores the OD.
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 2, 9, 4])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert!(!inc
            .result()
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
        let delta = inc.remove_rows(&[2]).unwrap();
        assert!(delta.full_rerun);
        assert!(
            delta
                .gained_ods
                .iter()
                .any(|od| od.to_string() == "[0] -> [1]")
                || inc.result().equivalence_classes == vec![vec![0, 1]],
            "deleting the outlier must restore the dependency: {delta:?}"
        );
        assert_eq!(inc.relation().num_rows(), 3);
    }

    #[test]
    fn deletion_matches_fresh_discovery() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = RelationBuilder::new(vec!["a", "b", "c"]);
        for _ in 0..14 {
            b.push_row((0..3).map(|_| Value::Int(rng.random_range(0..3))).collect())
                .unwrap();
        }
        let rel = b.finish();
        let mut inc = IncrementalDiscovery::new(&rel, DiscoveryConfig::default());
        inc.remove_rows(&[0, 5, 9]).unwrap();
        let fresh = discover(inc.relation(), &DiscoveryConfig::default());
        assert_eq!(inc.result().ocds, fresh.ocds);
        assert_eq!(inc.result().ods, fresh.ods);
        assert_eq!(inc.relation().num_rows(), 11);
    }

    #[test]
    fn deletion_rejects_out_of_range() {
        let r = rel(&[("a", &[1, 2])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert!(inc.remove_rows(&[5]).is_err());
        assert_eq!(inc.relation().num_rows(), 2);
    }

    #[test]
    fn arity_mismatch_is_rejected_without_corruption() {
        let r = rel(&[("a", &[1, 2]), ("b", &[3, 4])]);
        let mut inc = IncrementalDiscovery::new(&r, DiscoveryConfig::default());
        assert!(inc.append_rows(vec![ints(&[1])]).is_err());
        assert_eq!(
            inc.relation().num_rows(),
            2,
            "failed append must not mutate"
        );
    }
}
