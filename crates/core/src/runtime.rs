//! Run-control primitives shared by every discovery entry point:
//! cooperative cancellation, the amortized check/time budget, typed
//! termination reasons, and the (test/feature-gated) fault-injection plan.
//!
//! The paper's evaluation reports **partial results** when a run exceeds
//! its 5-hour threshold (§5.1, Table 6 footnote). This module generalizes
//! that: a run can end because it finished, hit a budget, was cancelled
//! from another thread, or lost workers to a panic — and the result says
//! which, via [`TerminationReason`].

use ocdd_relation::ColumnId;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::DiscoveryConfig;

/// The wall clock and the cancellation flag are only consulted every this
/// many `Budget::probe` calls: `Instant::now()` costs a vDSO call, which
/// the radix kernels made comparable to a cheap candidate check. The
/// deadline/cancellation overshoot this allows is a handful of candidates —
/// the paper's budget semantics (partial results past the threshold, §5.1)
/// are unaffected.
pub const DEADLINE_CHECK_INTERVAL: u64 = 64;

/// Why a discovery run stopped. Replaces the lossy `complete: bool`;
/// `DiscoveryResult::complete()` is derived from it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TerminationReason {
    /// The candidate tree was exhausted — results are the full answer.
    #[default]
    Complete,
    /// `max_level` stopped the breadth-first search.
    LevelCap,
    /// `max_checks` was spent before the tree was exhausted.
    CheckBudget,
    /// The wall-clock `time_budget` ran out (the paper's 5-hour threshold).
    TimeBudget,
    /// A [`RunController`] cancelled the run from another thread.
    Cancelled,
    /// One or more workers panicked; the named level-2 branches were
    /// quarantined and the surviving branches' results merged.
    WorkerFailure {
        /// Seed pairs of the quarantined level-2 branches, sorted.
        branches: Vec<(ColumnId, ColumnId)>,
        /// Panic payload of the first failure observed.
        message: String,
    },
}

impl TerminationReason {
    /// True only for [`TerminationReason::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, TerminationReason::Complete)
    }

    /// Stable snake_case tag for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TerminationReason::Complete => "complete",
            TerminationReason::LevelCap => "level_cap",
            TerminationReason::CheckBudget => "check_budget",
            TerminationReason::TimeBudget => "time_budget",
            TerminationReason::Cancelled => "cancelled",
            TerminationReason::WorkerFailure { .. } => "worker_failure",
        }
    }
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationReason::Complete => write!(f, "complete"),
            TerminationReason::LevelCap => write!(f, "partial (level cap)"),
            TerminationReason::CheckBudget => write!(f, "partial (check budget)"),
            TerminationReason::TimeBudget => write!(f, "partial (time budget)"),
            TerminationReason::Cancelled => write!(f, "partial (cancelled)"),
            TerminationReason::WorkerFailure { branches, .. } => {
                write!(
                    f,
                    "partial (worker failure, {} branch(es) lost)",
                    branches.len()
                )
            }
        }
    }
}

/// Cloneable handle that cancels a running discovery from another thread.
///
/// Install a clone in [`DiscoveryConfig::controller`], start the run, and
/// call [`RunController::cancel`] from anywhere: every search loop polls
/// the flag on the amortized `Budget` path and stops within one
/// [`DEADLINE_CHECK_INTERVAL`] batch, returning partial results with
/// [`TerminationReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct RunController {
    cancelled: Arc<AtomicBool>,
}

impl RunController {
    /// Fresh, un-cancelled controller.
    pub fn new() -> RunController {
        RunController::default()
    }

    /// Ask every run holding a clone of this controller to stop.
    pub fn cancel(&self) {
        // lint: allow(atomics-audit, monotonic one-way flag; a late observation only delays a cooperative stop and never orders result data)
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`RunController::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        // lint: allow(atomics-audit, monotonic flag read; staleness only delays the cooperative stop by one poll window)
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Which limit tripped a [`Budget`], in trip order (first cause wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopCause {
    /// `max_checks` exceeded (only via [`Budget::spend`]; the branch-local
    /// allowances of the main search account checks themselves).
    CheckBudget,
    /// The wall-clock deadline passed.
    TimeBudget,
    /// The [`RunController`] was cancelled.
    Cancelled,
}

impl From<StopCause> for TerminationReason {
    fn from(cause: StopCause) -> TerminationReason {
        match cause {
            StopCause::CheckBudget => TerminationReason::CheckBudget,
            StopCause::TimeBudget => TerminationReason::TimeBudget,
            StopCause::Cancelled => TerminationReason::Cancelled,
        }
    }
}

const STOP_NONE: u8 = 0;
const STOP_CHECKS: u8 = 1;
const STOP_TIME: u8 = 2;
const STOP_CANCELLED: u8 = 3;

/// Shared, cooperatively-checked run budget: counts candidate checks and
/// amortizes the expensive stop conditions (wall clock, cancellation flag)
/// to one consultation per [`DEADLINE_CHECK_INTERVAL`] probes.
pub(crate) struct Budget {
    checks: AtomicU64,
    max_checks: u64,
    deadline: Option<Instant>,
    controller: Option<RunController>,
    stop: AtomicU8,
    probe_calls: AtomicU64,
}

impl Budget {
    pub(crate) fn new(config: &DiscoveryConfig, start: Instant, initial_checks: u64) -> Budget {
        Budget {
            checks: AtomicU64::new(initial_checks),
            max_checks: config.max_checks.unwrap_or(u64::MAX),
            deadline: config.time_budget.map(|d| start + d),
            controller: config.controller.clone(),
            stop: AtomicU8::new(STOP_NONE),
            probe_calls: AtomicU64::new(0),
        }
    }

    /// Record `n` checks without enforcing `max_checks` — the main search
    /// enforces its check budget through deterministic per-branch
    /// allowances instead (see `search::branch_allowances`).
    pub(crate) fn record(&self, n: u64) {
        // lint: allow(atomics-audit, observability counter; snapshotted once at run end, never read on the result path)
        self.checks.fetch_add(n, Ordering::Relaxed);
    }

    /// Amortized stop-condition poll: consults the cancellation flag and
    /// the wall clock every [`DEADLINE_CHECK_INTERVAL`]-th call. Returns
    /// false once the run must stop.
    pub(crate) fn probe(&self) -> bool {
        // lint: allow(atomics-audit, stop code is write-once via CAS; a stale STOP_NONE read only delays the amortized stop by one window)
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return false;
        }
        if self.controller.is_some() || self.deadline.is_some() {
            // lint: allow(atomics-audit, probe counter only amortizes the wall-clock poll; its exact value carries no result data)
            let calls = self.probe_calls.fetch_add(1, Ordering::Relaxed);
            if calls.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                if self
                    .controller
                    .as_ref()
                    .is_some_and(RunController::is_cancelled)
                {
                    self.trip(StopCause::Cancelled);
                } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.trip(StopCause::TimeBudget);
                }
            }
        }
        // lint: allow(atomics-audit, stop code is write-once via CAS in trip(); re-read is idempotent)
        self.stop.load(Ordering::Relaxed) == STOP_NONE
    }

    /// Immediate (non-amortized) stop-condition poll, consulted once per
    /// batch by the work-stealing scheduler: batch boundaries are rare
    /// enough that the vDSO call is free, and polling here bounds the
    /// cancellation latency by one batch instead of one
    /// [`DEADLINE_CHECK_INTERVAL`] window. Returns false once the run must
    /// stop.
    pub(crate) fn probe_now(&self) -> bool {
        // lint: allow(atomics-audit, stop code is write-once via CAS; a stale STOP_NONE read costs at most one extra batch)
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return false;
        }
        if self
            .controller
            .as_ref()
            .is_some_and(RunController::is_cancelled)
        {
            self.trip(StopCause::Cancelled);
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(StopCause::TimeBudget);
        }
        // lint: allow(atomics-audit, stop code is write-once via CAS in trip(); re-read is idempotent)
        self.stop.load(Ordering::Relaxed) == STOP_NONE
    }

    /// Record `n` checks *and* enforce the global `max_checks` cap — used
    /// by the sequential entry points (bidirectional, approximate) where a
    /// single traversal makes global accounting deterministic. Returns
    /// false once the run must stop.
    pub(crate) fn spend(&self, n: u64) -> bool {
        // lint: allow(atomics-audit, single-traversal entry points only; the monotone counter needs no ordering with other memory)
        let total = self.checks.fetch_add(n, Ordering::Relaxed) + n;
        if total > self.max_checks {
            self.trip(StopCause::CheckBudget);
        }
        self.probe()
    }

    fn trip(&self, cause: StopCause) {
        let code = match cause {
            StopCause::CheckBudget => STOP_CHECKS,
            StopCause::TimeBudget => STOP_TIME,
            StopCause::Cancelled => STOP_CANCELLED,
        };
        // First cause wins: a run stops for exactly one reason.
        // lint: allow(atomics-audit, the CAS itself serializes the single write; the stop code is the only state it guards)
        const ORD: Ordering = Ordering::Relaxed;
        let _ = self.stop.compare_exchange(STOP_NONE, code, ORD, ORD);
    }

    pub(crate) fn is_stopped(&self) -> bool {
        // lint: allow(atomics-audit, write-once stop code; consumers re-check under their own synchronization before acting)
        self.stop.load(Ordering::Relaxed) != STOP_NONE
    }

    pub(crate) fn cause(&self) -> Option<StopCause> {
        // lint: allow(atomics-audit, read after the run's join barrier; the joining thread already synchronized with every writer)
        match self.stop.load(Ordering::Relaxed) {
            STOP_CHECKS => Some(StopCause::CheckBudget),
            STOP_TIME => Some(StopCause::TimeBudget),
            STOP_CANCELLED => Some(StopCause::Cancelled),
            _ => None,
        }
    }

    /// Checks recorded so far (reduction + search).
    pub(crate) fn checks(&self) -> u64 {
        // lint: allow(atomics-audit, observability counter read after the join barrier; reported in stats only)
        self.checks.load(Ordering::Relaxed)
    }
}

/// The single sanctioned wall-clock read of the core crates.
///
/// The `clock-confinement` lint rule confines `Instant::now` to this
/// module: every elapsed-time measurement and budget deadline routes
/// through here, so a determinism audit has exactly one place to look for
/// time dependence.
pub(crate) fn now() -> Instant {
    Instant::now()
}

/// Deterministic fault-injection plan for the discovery runtime.
///
/// Only consulted through hook points compiled under
/// `cfg(any(test, feature = "fault-injection"))` — production builds
/// without the feature carry no injection branches. Install a plan via
/// `DiscoveryConfig::fault` (same gating) and run discovery normally:
///
/// * [`panic_on_branch`](FaultPlan::panic_on_branch) panics the worker the
///   moment it touches a candidate of that level-2 branch — the branch is
///   quarantined and the run degrades to
///   [`TerminationReason::WorkerFailure`];
/// * [`panic_after_checks`](FaultPlan::panic_after_checks) panics on the
///   n-th candidate across the whole run (scheduling decides which branch
///   dies in parallel modes);
/// * [`check_delay`](FaultPlan::check_delay) sleeps inside every checker
///   call, for exercising time budgets and cancellation deterministically;
/// * [`drop_cache_inserts`](FaultPlan::drop_cache_inserts) turns the
///   shared prefix cache into a permanent eviction storm (every insert is
///   dropped on the floor) — results must not change, only hit rates.
///
/// The plan carries a run-scoped candidate counter; build a fresh plan per
/// run when comparing against a fault-free baseline.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Panic when a worker processes any candidate of this level-2 branch
    /// (seed pair of first attributes, smaller id first).
    pub panic_on_branch: Option<(ColumnId, ColumnId)>,
    /// Panic on the n-th processed candidate (1-based, counted across all
    /// workers of the run).
    pub panic_after_checks: Option<u64>,
    /// Sleep this long inside every `check_ocd`/`check_od` call.
    pub check_delay: Option<Duration>,
    /// Drop every shared-cache insert, simulating a cache whose budget
    /// evicts everything immediately.
    pub drop_cache_inserts: bool,
    #[cfg(any(test, feature = "fault-injection"))]
    counter: AtomicU64,
}

#[cfg(any(test, feature = "fault-injection"))]
impl FaultPlan {
    /// A plan that only slows every checker call down by `delay` — the
    /// crash harness's knob for making a run long enough to SIGKILL
    /// mid-level (`ocdd --check-delay-ms`).
    pub fn delay_checks(delay: Duration) -> FaultPlan {
        FaultPlan {
            check_delay: Some(delay),
            ..FaultPlan::default()
        }
    }

    /// Worker hook: called once per candidate, before it is checked.
    /// Panics according to the plan.
    pub(crate) fn before_candidate(&self, branch: (ColumnId, ColumnId)) {
        // lint: allow(atomics-audit, fault-injection candidate counter; test and feature builds only, never on the result path)
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_after_checks == Some(n) {
            // lint: allow(no-panic, injected fault — panicking here is this hook's entire purpose)
            panic!("injected panic after {n} candidate checks");
        }
        if self.panic_on_branch == Some(branch) {
            // lint: allow(no-panic, injected fault — panicking here is this hook's entire purpose)
            panic!("injected panic in branch ({}, {})", branch.0, branch.1);
        }
    }

    /// Checker hook: called once per OCD/OD check.
    pub(crate) fn check_latency(&self) {
        if let Some(d) = self.check_delay {
            std::thread::sleep(d);
        }
    }

    /// Shared-cache hook: true when inserts must be dropped.
    pub(crate) fn drops_cache_inserts(&self) -> bool {
        self.drop_cache_inserts
    }
}

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_cancels_once_for_all_clones() {
        let c = RunController::new();
        let clone = c.clone();
        assert!(!c.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(c.is_cancelled() && clone.is_cancelled());
    }

    #[test]
    fn termination_labels_are_stable() {
        assert_eq!(TerminationReason::Complete.label(), "complete");
        assert_eq!(TerminationReason::Cancelled.label(), "cancelled");
        let wf = TerminationReason::WorkerFailure {
            branches: vec![(0, 1)],
            message: "boom".into(),
        };
        assert_eq!(wf.label(), "worker_failure");
        assert!(wf.to_string().contains("1 branch"));
        assert!(TerminationReason::Complete.is_complete());
        assert!(!wf.is_complete());
    }

    #[test]
    fn budget_spend_enforces_max_checks() {
        let config = DiscoveryConfig {
            max_checks: Some(10),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 4);
        assert!(b.spend(3)); // 7
        assert!(b.spend(3)); // 10, not over
        assert!(!b.spend(1)); // 11 > 10
        assert_eq!(b.cause(), Some(StopCause::CheckBudget));
        assert_eq!(b.checks(), 11);
    }

    #[test]
    fn budget_record_never_trips_check_cause() {
        let config = DiscoveryConfig {
            max_checks: Some(2),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 0);
        b.record(100);
        assert!(b.probe());
        assert_eq!(b.cause(), None);
        assert_eq!(b.checks(), 100);
    }

    #[test]
    fn probe_sees_cancellation_within_one_interval() {
        let controller = RunController::new();
        let config = DiscoveryConfig {
            controller: Some(controller.clone()),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 0);
        assert!(b.probe());
        controller.cancel();
        let mut stopped_after = None;
        for i in 0..=DEADLINE_CHECK_INTERVAL {
            if !b.probe() {
                stopped_after = Some(i);
                break;
            }
        }
        let n = stopped_after.expect("probe must observe cancellation within one interval");
        assert!(n <= DEADLINE_CHECK_INTERVAL);
        assert_eq!(b.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn probe_now_sees_cancellation_immediately() {
        let controller = RunController::new();
        let config = DiscoveryConfig {
            controller: Some(controller.clone()),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 0);
        assert!(b.probe_now());
        controller.cancel();
        assert!(!b.probe_now(), "batch boundary poll must not amortize");
        assert_eq!(b.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_time_budget() {
        let config = DiscoveryConfig {
            time_budget: Some(Duration::ZERO),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 0);
        assert!(!b.probe(), "call 0 is a probe boundary");
        assert_eq!(b.cause(), Some(StopCause::TimeBudget));
    }

    #[test]
    fn first_cause_wins() {
        let config = DiscoveryConfig {
            max_checks: Some(1),
            ..DiscoveryConfig::default()
        };
        let b = Budget::new(&config, Instant::now(), 0);
        assert!(!b.spend(5));
        b.trip(StopCause::Cancelled);
        assert_eq!(b.cause(), Some(StopCause::CheckBudget));
    }

    #[test]
    fn panic_message_extracts_payloads() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(boxed.as_ref()), "static");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "opaque panic payload");
    }

    #[test]
    fn fault_plan_panics_deterministically() {
        let plan = FaultPlan {
            panic_after_checks: Some(3),
            ..FaultPlan::default()
        };
        plan.before_candidate((0, 1));
        plan.before_candidate((0, 2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_candidate((1, 2));
        }))
        .expect_err("third candidate must panic");
        assert!(panic_message(err.as_ref()).contains("after 3"));

        let plan = FaultPlan {
            panic_on_branch: Some((2, 5)),
            ..FaultPlan::default()
        };
        plan.before_candidate((0, 1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_candidate((2, 5));
        }))
        .expect_err("matching branch must panic");
        assert!(panic_message(err.as_ref()).contains("branch (2, 5)"));
    }
}
