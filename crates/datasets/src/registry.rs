//! The dataset registry: one entry per dataset of Table 6, each mapped to a
//! deterministic generator reproducing the dataset's shape (see DESIGN.md
//! §4 for the substitution rationale).

use crate::paper;
use crate::synthetic::{ColumnSpec, TableSpec};
use crate::tpch;
use ocdd_relation::Relation;

/// Row-count selector for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowScale {
    /// The row count reported in Table 6 of the paper.
    Default,
    /// An explicit row count (generators cap the paper tables at their
    /// fixed sizes).
    Rows(usize),
    /// A fraction of the default row count (used by the Figure 2 row
    /// scalability sweep).
    Fraction(f64),
}

impl RowScale {
    fn resolve(self, default_rows: usize) -> usize {
        match self {
            RowScale::Default => default_rows,
            RowScale::Rows(n) => n,
            RowScale::Fraction(f) => ((default_rows as f64) * f.clamp(0.0, 1.0)) as usize,
        }
    }
}

/// The datasets of the paper's evaluation (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// DBTESMA data-generator output: 250,000 × 30, dependency-rich.
    Dbtesma,
    /// First 1,000 rows of DBTESMA (the trimmed version of §5.2.2).
    Dbtesma1k,
    /// FLIGHT with 1,000 rows × 109 columns: constants and quasi-constants
    /// make the candidate tree explode (never completes within the limit).
    Flight1k,
    /// HEPATITIS: 155 × 20 categorical/medical data with NULLs.
    Hepatitis,
    /// HORSE (colic): 300 × 29, mixed types, many NULLs, dependency-rich.
    Horse,
    /// LETTER recognition features: 20,000 × 17, essentially dependency-free.
    Letter,
    /// TPC-H LINEITEM: 6,001,215 × 16.
    Lineitem,
    /// NCVOTER trimmed to 1,000 rows × 19 columns.
    Ncvoter1k,
    /// Full NCVOTER: 938,084 × 94 (experiments use 20-column samples).
    Ncvoter,
    /// The YES relation of Table 5 (a).
    Yes,
    /// The NO relation of Table 5 (b).
    No,
    /// The NUMBERS relation of Table 7.
    Numbers,
}

impl Dataset {
    /// All datasets in Table 6 row order.
    pub fn all() -> &'static [Dataset] {
        &[
            Dataset::Dbtesma,
            Dataset::Dbtesma1k,
            Dataset::Flight1k,
            Dataset::Hepatitis,
            Dataset::Horse,
            Dataset::Letter,
            Dataset::Lineitem,
            Dataset::Ncvoter1k,
            Dataset::Ncvoter,
            Dataset::Yes,
            Dataset::No,
            Dataset::Numbers,
        ]
    }

    /// Canonical lowercase name (as used by the experiment harness CLI).
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Dbtesma => "dbtesma",
            Dataset::Dbtesma1k => "dbtesma_1k",
            Dataset::Flight1k => "flight_1k",
            Dataset::Hepatitis => "hepatitis",
            Dataset::Horse => "horse",
            Dataset::Letter => "letter",
            Dataset::Lineitem => "lineitem",
            Dataset::Ncvoter1k => "ncvoter_1k",
            Dataset::Ncvoter => "ncvoter",
            Dataset::Yes => "yes",
            Dataset::No => "no",
            Dataset::Numbers => "numbers",
        }
    }

    /// Look a dataset up by its [`Dataset::name`].
    pub fn by_name(name: &str) -> Option<Dataset> {
        Dataset::all().iter().copied().find(|d| d.name() == name)
    }

    /// Row count reported in Table 6.
    pub fn default_rows(&self) -> usize {
        match self {
            Dataset::Dbtesma => 250_000,
            Dataset::Dbtesma1k => 1_000,
            Dataset::Flight1k => 1_000,
            Dataset::Hepatitis => 155,
            Dataset::Horse => 300,
            Dataset::Letter => 20_000,
            Dataset::Lineitem => tpch::LINEITEM_FULL_ROWS,
            Dataset::Ncvoter1k => 1_000,
            Dataset::Ncvoter => 938_084,
            Dataset::Yes | Dataset::No => 5,
            Dataset::Numbers => 6,
        }
    }

    /// Column count reported in Table 6.
    pub fn default_columns(&self) -> usize {
        match self {
            Dataset::Dbtesma | Dataset::Dbtesma1k => 30,
            Dataset::Flight1k => 109,
            Dataset::Hepatitis => 20,
            Dataset::Horse => 29,
            Dataset::Letter => 17,
            Dataset::Lineitem => 16,
            Dataset::Ncvoter1k => 19,
            Dataset::Ncvoter => 94,
            Dataset::Yes | Dataset::No => 2,
            Dataset::Numbers => 5,
        }
    }

    /// Whether the paper reports this dataset as exceeding the 5-hour time
    /// limit for OCDDISCOVER (partial results in Table 6).
    pub fn exceeds_time_limit(&self) -> bool {
        matches!(self, Dataset::Flight1k | Dataset::Ncvoter)
    }

    /// Generate the relation at the requested scale (deterministic).
    pub fn generate(&self, scale: RowScale) -> Relation {
        let rows = scale.resolve(self.default_rows());
        match self {
            Dataset::Yes => paper::yes_table(),
            Dataset::No => paper::no_table(),
            Dataset::Numbers => paper::numbers_table(),
            Dataset::Lineitem => tpch::lineitem(rows, 0x11ae),
            Dataset::Dbtesma => dbtesma_spec(rows).generate(0xdbe5),
            Dataset::Dbtesma1k => dbtesma_spec(rows).generate(0xdbe5),
            Dataset::Flight1k => flight_spec(rows).generate(0xf1a7),
            Dataset::Hepatitis => hepatitis_spec(rows).generate(0x4e9a),
            Dataset::Horse => horse_spec(rows).generate(0x4025),
            Dataset::Letter => letter_spec(rows).generate(0x1e77),
            Dataset::Ncvoter1k => ncvoter_spec(rows, 19).generate(0x9c01),
            Dataset::Ncvoter => ncvoter_spec(rows, 94).generate(0x9c02),
        }
    }
}

/// DBTESMA-like: dependency-rich generator output. A co-monotone block and
/// equivalence/ordering chains give the search many candidates to check —
/// the property that makes DBTESMA the biggest winner from multithreading
/// in Figure 6.
fn dbtesma_spec(rows: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![
        ("id", ColumnSpec::Key),
        (
            "id_alias",
            ColumnSpec::EquivalentTo {
                source: 0,
                scale: 2,
                offset: 100,
            },
        ),
        (
            "grp",
            ColumnSpec::OrderedBy {
                source: 0,
                coarseness: 50,
            },
        ),
        (
            "grp_wide",
            ColumnSpec::OrderedBy {
                source: 0,
                coarseness: 500,
            },
        ),
        // Three *independent* mutually-order-compatible blocks: heavy search
        // branches land on 3 × C(4,2) = 18 different level-2 seeds, which is
        // what makes DBTESMA the best thread-scaling dataset (Figure 6).
        (
            "blk1_a",
            ColumnSpec::PermutedSorted {
                group: 1,
                distinct: 120,
            },
        ),
        (
            "blk1_b",
            ColumnSpec::PermutedSorted {
                group: 1,
                distinct: 90,
            },
        ),
        (
            "blk1_c",
            ColumnSpec::PermutedSorted {
                group: 1,
                distinct: 150,
            },
        ),
        (
            "blk1_d",
            ColumnSpec::PermutedSorted {
                group: 1,
                distinct: 60,
            },
        ),
        (
            "blk2_a",
            ColumnSpec::PermutedSorted {
                group: 2,
                distinct: 110,
            },
        ),
        (
            "blk2_b",
            ColumnSpec::PermutedSorted {
                group: 2,
                distinct: 70,
            },
        ),
        (
            "blk2_c",
            ColumnSpec::PermutedSorted {
                group: 2,
                distinct: 140,
            },
        ),
        (
            "blk2_d",
            ColumnSpec::PermutedSorted {
                group: 2,
                distinct: 80,
            },
        ),
        (
            "blk3_a",
            ColumnSpec::PermutedSorted {
                group: 3,
                distinct: 100,
            },
        ),
        (
            "blk3_b",
            ColumnSpec::PermutedSorted {
                group: 3,
                distinct: 65,
            },
        ),
        (
            "blk3_c",
            ColumnSpec::PermutedSorted {
                group: 3,
                distinct: 130,
            },
        ),
        (
            "blk3_d",
            ColumnSpec::PermutedSorted {
                group: 3,
                distinct: 55,
            },
        ),
        ("code", ColumnSpec::RandomInt { distinct: 64 }),
        (
            "code_eq",
            ColumnSpec::EquivalentTo {
                source: 16,
                scale: 7,
                offset: 3,
            },
        ),
        ("flag_const", ColumnSpec::Constant(1)),
    ];
    for i in 0..11 {
        let name: &'static str = Box::leak(format!("attr{i:02}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::RandomInt {
                distinct: 200 + i * 37,
            },
        ));
    }
    TableSpec::new(cols, rows)
}

/// FLIGHT-like: very wide, with constants and a block of low-cardinality
/// co-monotone (quasi-constant) columns — the §5.4 pathology that makes the
/// candidate tree explode.
fn flight_spec(rows: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> = Vec::with_capacity(109);
    cols.push(("flight_id", ColumnSpec::Key));
    // 12 constant columns (airline metadata repeated on every row).
    for i in 0..12 {
        let name: &'static str = Box::leak(format!("const{i:02}").into_boxed_str());
        cols.push((name, ColumnSpec::Constant(i as i64)));
    }
    // A co-monotone block of 18 columns with 2–6 distinct values: pairwise
    // order compatible, no ODs between them -> factorial subtree.
    cols.push(("qc_anchor", ColumnSpec::SortedInt { distinct: 4 }));
    for i in 0..17 {
        let name: &'static str = Box::leak(format!("qc{i:02}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::CoMonotoneWith {
                source: 13,
                distinct: 2 + i % 5,
            },
        ));
    }
    // Ordered chains (times: scheduled -> actual buckets).
    cols.push(("sched_dep", ColumnSpec::SortedInt { distinct: 800 }));
    cols.push((
        "dep_hour",
        ColumnSpec::OrderedBy {
            source: 31,
            coarseness: 30,
        },
    ));
    cols.push((
        "dep_ampm",
        ColumnSpec::OrderedBy {
            source: 31,
            coarseness: 400,
        },
    ));
    // Remaining columns: independent categoricals and numerics of varied
    // cardinality, some with NULLs.
    let mut idx = 0usize;
    while cols.len() < 109 {
        let name: &'static str = Box::leak(format!("f{idx:03}").into_boxed_str());
        let spec = match idx % 4 {
            0 => ColumnSpec::RandomInt {
                distinct: 50 + idx * 11,
            },
            1 => ColumnSpec::RandomStr { distinct: 30 + idx },
            2 => ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 25 + idx }),
                null_rate: 0.05,
            },
            _ => ColumnSpec::RandomInt { distinct: 500 },
        };
        cols.push((name, spec));
        idx += 1;
    }
    TableSpec::new(cols, rows)
}

/// HEPATITIS-like: small, mostly low-cardinality categorical medical data
/// with NULLs; random categoricals swap against each other, so the tree
/// prunes early and discovery completes quickly.
fn hepatitis_spec(rows: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![
        ("age", ColumnSpec::RandomInt { distinct: 60 }),
        ("sex", ColumnSpec::RandomInt { distinct: 2 }),
        (
            "bilirubin",
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 40 }),
                null_rate: 0.04,
            },
        ),
        (
            "bili_band",
            ColumnSpec::OrderedBy {
                source: 2,
                coarseness: 8,
            },
        ),
        (
            "alk_phos",
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 80 }),
                null_rate: 0.18,
            },
        ),
        ("sgot", ColumnSpec::RandomInt { distinct: 70 }),
        ("albumin", ColumnSpec::SortedInt { distinct: 25 }),
        (
            "protime",
            ColumnSpec::CoMonotoneWith {
                source: 6,
                distinct: 30,
            },
        ),
    ];
    for i in 0..12 {
        let name: &'static str = Box::leak(format!("sym{i:02}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 2 }),
                null_rate: 0.06,
            },
        ));
    }
    TableSpec::new(cols, rows)
}

/// HORSE-like (colic): 29 mixed columns, heavy NULLs, and enough planted
/// order structure that ORDER/OCDDISCOVER find a few dozen dependencies.
fn horse_spec(rows: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![
        ("hospital_id", ColumnSpec::Key),
        (
            "visit_no",
            ColumnSpec::OrderedBy {
                source: 0,
                coarseness: 3,
            },
        ),
        (
            "rectal_temp",
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 40 }),
                null_rate: 0.2,
            },
        ),
        (
            "pulse",
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 50 }),
                null_rate: 0.08,
            },
        ),
        (
            "pulse_band",
            ColumnSpec::OrderedBy {
                source: 3,
                coarseness: 10,
            },
        ),
        ("resp_rate", ColumnSpec::SortedInt { distinct: 35 }),
        (
            "resp_band",
            ColumnSpec::OrderedBy {
                source: 5,
                coarseness: 7,
            },
        ),
        (
            "packed_cell",
            ColumnSpec::CoMonotoneWith {
                source: 5,
                distinct: 30,
            },
        ),
        (
            "total_protein",
            ColumnSpec::CoMonotoneWith {
                source: 5,
                distinct: 25,
            },
        ),
        (
            "protein_x10",
            ColumnSpec::EquivalentTo {
                source: 8,
                scale: 10,
                offset: 0,
            },
        ),
    ];
    for i in 0..19 {
        let name: &'static str = Box::leak(format!("clin{i:02}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt {
                    distinct: 3 + i % 4,
                }),
                null_rate: 0.15,
            },
        ));
    }
    TableSpec::new(cols, rows)
}

/// LETTER-like: 17 independent numeric feature columns — essentially no
/// order dependencies, so discovery cost is dominated by the pairwise
/// reduction checks.
fn letter_spec(rows: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> =
        vec![("letter", ColumnSpec::RandomInt { distinct: 26 })];
    for i in 0..16 {
        let name: &'static str = Box::leak(format!("feat{i:02}").into_boxed_str());
        cols.push((name, ColumnSpec::RandomInt { distinct: 16 }));
    }
    TableSpec::new(cols, rows)
}

/// NCVOTER-like: voter registration data — string-heavy, geographic
/// ordering chains (zip → county), status quasi-constants.
fn ncvoter_spec(rows: usize, columns: usize) -> TableSpec {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![
        ("voter_id", ColumnSpec::Key),
        (
            "reg_date",
            ColumnSpec::OrderedBy {
                source: 0,
                coarseness: 4,
            },
        ),
        ("zip", ColumnSpec::SortedInt { distinct: 120 }),
        (
            "county_id",
            ColumnSpec::OrderedBy {
                source: 2,
                coarseness: 12,
            },
        ),
        (
            "district",
            ColumnSpec::OrderedBy {
                source: 2,
                coarseness: 30,
            },
        ),
        (
            "precinct",
            ColumnSpec::CoMonotoneWith {
                source: 2,
                distinct: 90,
            },
        ),
        ("status", ColumnSpec::QuasiConstant { distinct: 3 }),
        ("party", ColumnSpec::RandomStr { distinct: 5 }),
        ("last_name", ColumnSpec::RandomStr { distinct: 400 }),
        ("first_name", ColumnSpec::RandomStr { distinct: 200 }),
    ];
    let mut idx = 0usize;
    while cols.len() < columns {
        let name: &'static str = Box::leak(format!("v{idx:03}").into_boxed_str());
        let spec = match idx % 3 {
            0 => ColumnSpec::RandomStr {
                distinct: 60 + idx * 3,
            },
            1 => ColumnSpec::WithNulls {
                inner: Box::new(ColumnSpec::RandomInt { distinct: 12 + idx }),
                null_rate: 0.1,
            },
            _ => ColumnSpec::RandomInt { distinct: 300 },
        };
        cols.push((name, spec));
        idx += 1;
    }
    TableSpec::new(cols, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_6() {
        for &ds in Dataset::all() {
            // Generate small instances to keep the test fast; column count
            // must always match the paper.
            let rows = ds.default_rows().min(200);
            let rel = ds.generate(RowScale::Rows(rows));
            assert_eq!(
                rel.num_columns(),
                ds.default_columns(),
                "column count mismatch for {}",
                ds.name()
            );
            let expected_rows = match ds {
                Dataset::Yes | Dataset::No | Dataset::Numbers => ds.default_rows(),
                _ => rows,
            };
            assert_eq!(
                rel.num_rows(),
                expected_rows,
                "row count mismatch for {}",
                ds.name()
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for &ds in Dataset::all() {
            assert_eq!(Dataset::by_name(ds.name()), Some(ds));
        }
        assert_eq!(Dataset::by_name("nope"), None);
    }

    #[test]
    fn row_scale_resolution() {
        assert_eq!(RowScale::Default.resolve(100), 100);
        assert_eq!(RowScale::Rows(7).resolve(100), 7);
        assert_eq!(RowScale::Fraction(0.3).resolve(1000), 300);
        assert_eq!(
            RowScale::Fraction(2.0).resolve(1000),
            1000,
            "fractions clamp to 1"
        );
    }

    #[test]
    fn flight_has_constants_and_quasi_constants() {
        let rel = Dataset::Flight1k.generate(RowScale::Rows(300));
        let constants = (0..rel.num_columns())
            .filter(|&c| rel.meta(c).is_constant())
            .count();
        assert!(constants >= 12, "found {constants} constant columns");
        let quasi = (0..rel.num_columns())
            .filter(|&c| {
                let d = rel.meta(c).distinct;
                d > 1 && d <= 6
            })
            .count();
        assert!(quasi >= 15, "found {quasi} quasi-constant columns");
    }

    #[test]
    fn letter_is_dependency_free() {
        use ocdd_core::{discover, DiscoveryConfig};
        let rel = Dataset::Letter.generate(RowScale::Rows(2_000));
        let result = discover(&rel, &DiscoveryConfig::default());
        assert!(result.complete());
        assert!(
            result.ocds.is_empty(),
            "letter should have no OCDs: {:?}",
            result.ocds
        );
        assert!(result.equivalence_classes.is_empty());
    }

    #[test]
    fn dbtesma_is_dependency_rich() {
        use ocdd_core::{discover, DiscoveryConfig};
        let rel = Dataset::Dbtesma1k.generate(RowScale::Default);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert!(result.complete());
        assert!(
            !result.equivalence_classes.is_empty(),
            "planted equivalences missing"
        );
        assert!(!result.ocds.is_empty(), "planted co-monotone block missing");
        assert!(!result.constants.is_empty());
        assert!(result.ods.len() >= 2, "planted OrderedBy chains missing");
    }

    #[test]
    fn horse_has_planted_structure() {
        use ocdd_core::{discover, DiscoveryConfig};
        let rel = Dataset::Horse.generate(RowScale::Default);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert!(result.complete());
        assert!(!result.ods.is_empty());
        assert!(!result.equivalence_classes.is_empty());
    }

    #[test]
    fn generation_is_deterministic_across_calls() {
        let a = Dataset::Hepatitis.generate(RowScale::Default);
        let b = Dataset::Hepatitis.generate(RowScale::Default);
        for row in 0..a.num_rows() {
            for col in 0..a.num_columns() {
                assert_eq!(a.value(row, col), b.value(row, col));
            }
        }
    }
}
