//! Declarative synthetic table generation.
//!
//! A [`TableSpec`] lists one [`ColumnSpec`] per column; [`TableSpec::generate`]
//! produces a deterministic [`Relation`] for a seed. The specs cover the
//! structural ingredients that drive order dependency discovery:
//!
//! * **keys** and independent random columns (no dependencies),
//! * **derived columns** that another column orders ([`ColumnSpec::OrderedBy`])
//!   or is order equivalent to ([`ColumnSpec::EquivalentTo`]),
//! * **co-monotone groups** that are order *compatible* without either
//!   ordering the other ([`ColumnSpec::CoMonotoneWith`]) — the YES-table
//!   pattern at scale,
//! * **constants** and **quasi-constants** (the §5.3.2/§5.4 troublemakers),
//! * string columns and NULL injection.
//!
//! Generation works on a sorted backbone and applies one global row shuffle
//! at the end: order dependencies are invariant under row permutation, so
//! this preserves the planted structure while producing realistic-looking
//! tables.

use ocdd_relation::{Relation, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Specification of one generated column.
#[derive(Debug, Clone)]
pub enum ColumnSpec {
    /// Unique integers 0..rows, shuffled: a key column.
    Key,
    /// Independent uniform integers with the given number of distinct values.
    RandomInt {
        /// Domain size.
        distinct: usize,
    },
    /// Independent random lowercase strings.
    RandomStr {
        /// Number of distinct strings to draw from.
        distinct: usize,
    },
    /// The same value in every row.
    Constant(i64),
    /// A column with very few distinct values, heavily skewed toward the
    /// first (the "quasi-constant" pattern; `distinct` ≥ 2).
    QuasiConstant {
        /// Number of distinct values.
        distinct: usize,
    },
    /// A monotone non-decreasing function of an earlier column: the source
    /// column *orders* this one (`source → this`), with ties introduced by
    /// integer-dividing the source rank by `coarseness`.
    OrderedBy {
        /// Index of the source column within the spec list.
        source: usize,
        /// How many source ranks map to one output value (≥ 1).
        coarseness: usize,
    },
    /// A strictly monotone transform of an earlier column: order
    /// equivalent to it (`source ↔ this`).
    EquivalentTo {
        /// Index of the source column within the spec list.
        source: usize,
        /// Multiplier (must be positive).
        scale: i64,
        /// Additive offset.
        offset: i64,
    },
    /// Co-monotone with an earlier column: both are non-decreasing along
    /// the backbone with *independent* tie structure, so `this ~ source`
    /// holds while neither orders the other (the YES pattern).
    CoMonotoneWith {
        /// Index of the source column within the spec list. The source must
        /// itself be backbone-sorted (`SortedInt` or another co-monotone).
        source: usize,
        /// Number of distinct values.
        distinct: usize,
    },
    /// Non-decreasing integers along the backbone with the given number of
    /// distinct values; the anchor for co-monotone groups.
    SortedInt {
        /// Number of distinct values.
        distinct: usize,
    },
    /// A sorted column viewed through a per-`group` row permutation:
    /// columns sharing a `group` are mutually order compatible (they see
    /// the same row order), while columns of different groups are mutually
    /// random. This builds several *independent* co-monotone blocks in one
    /// table — the pattern that spreads heavy search branches across many
    /// seeds (used by the DBTESMA stand-in for the Figure 6 experiment).
    PermutedSorted {
        /// Group id; deterministic per (group, row count).
        group: u64,
        /// Number of distinct values.
        distinct: usize,
    },
    /// Wrap another spec, replacing a fraction of cells with NULL.
    WithNulls {
        /// The wrapped column spec.
        inner: Box<ColumnSpec>,
        /// Probability of a NULL per cell, in `[0, 1]`.
        null_rate: f64,
    },
}

/// A whole-table specification: named columns plus a row count.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Column names and specs, in schema order.
    pub columns: Vec<(String, ColumnSpec)>,
    /// Number of rows to generate.
    pub rows: usize,
}

impl TableSpec {
    /// Build a spec from `(name, spec)` pairs.
    pub fn new(columns: Vec<(&str, ColumnSpec)>, rows: usize) -> TableSpec {
        TableSpec {
            columns: columns
                .into_iter()
                .map(|(n, s)| (n.to_owned(), s))
                .collect(),
            rows,
        }
    }

    /// Generate the relation deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = self.rows;
        let mut raw: Vec<Vec<Value>> = Vec::with_capacity(self.columns.len());

        for (_, spec) in &self.columns {
            let col = generate_column(spec, rows, &raw, &mut rng);
            raw.push(col);
        }

        // One global shuffle preserves every OD/OCD while hiding the
        // sorted backbone.
        let mut perm: Vec<usize> = (0..rows).collect();
        perm.shuffle(&mut rng);
        let named = self
            .columns
            .iter()
            .zip(raw)
            .map(|((name, _), col)| {
                let shuffled: Vec<Value> = perm.iter().map(|&r| col[r].clone()).collect();
                (name.clone(), shuffled)
            })
            .collect();
        Relation::from_columns(named).expect("generator produces equal-length columns")
    }
}

fn generate_column(
    spec: &ColumnSpec,
    rows: usize,
    earlier: &[Vec<Value>],
    rng: &mut StdRng,
) -> Vec<Value> {
    match spec {
        ColumnSpec::Key => {
            let mut vals: Vec<i64> = (0..rows as i64).collect();
            vals.shuffle(rng);
            vals.into_iter().map(Value::Int).collect()
        }
        ColumnSpec::RandomInt { distinct } => {
            let d = (*distinct).max(1) as i64;
            (0..rows)
                .map(|_| Value::Int(rng.random_range(0..d)))
                .collect()
        }
        ColumnSpec::RandomStr { distinct } => {
            let d = (*distinct).max(1);
            let pool: Vec<String> = (0..d)
                .map(|i| format!("s{:06}", i * 7919 % 999_983))
                .collect();
            (0..rows)
                .map(|_| Value::Str(pool[rng.random_range(0..d)].clone()))
                .collect()
        }
        ColumnSpec::Constant(v) => vec![Value::Int(*v); rows],
        ColumnSpec::QuasiConstant { distinct } => {
            let d = (*distinct).max(2) as i64;
            (0..rows)
                .map(|_| {
                    // ~90% of mass on value 0, remainder uniform.
                    if rng.random_range(0..10) < 9 {
                        Value::Int(0)
                    } else {
                        Value::Int(rng.random_range(1..d))
                    }
                })
                .collect()
        }
        ColumnSpec::OrderedBy { source, coarseness } => {
            let src = &earlier[*source];
            let ranks = rank_of(src);
            let c = (*coarseness).max(1) as i64;
            ranks
                .into_iter()
                .map(|r| Value::Int(r as i64 / c))
                .collect()
        }
        ColumnSpec::EquivalentTo {
            source,
            scale,
            offset,
        } => {
            let src = &earlier[*source];
            let ranks = rank_of(src);
            let s = (*scale).max(1);
            ranks
                .into_iter()
                .map(|r| Value::Int(r as i64 * s + offset))
                .collect()
        }
        ColumnSpec::CoMonotoneWith { source, distinct } => {
            // The source is assumed non-decreasing along the backbone, so a
            // fresh sorted column is co-monotone with it by construction.
            let _ = source; // documented coupling; values only need sortedness
            sorted_column(rows, (*distinct).max(1), rng)
        }
        ColumnSpec::SortedInt { distinct } => sorted_column(rows, (*distinct).max(1), rng),
        ColumnSpec::PermutedSorted { group, distinct } => {
            let vals = sorted_column(rows, (*distinct).max(1), rng);
            // The permutation depends only on (group, rows), so every
            // column of the group sees the same row order.
            let mut perm: Vec<usize> = (0..rows).collect();
            let mut group_rng = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ *group);
            perm.shuffle(&mut group_rng);
            perm.into_iter().map(|i| vals[i].clone()).collect()
        }
        ColumnSpec::WithNulls { inner, null_rate } => {
            let mut vals = generate_column(inner, rows, earlier, rng);
            for v in vals.iter_mut() {
                if rng.random_range(0.0..1.0) < *null_rate {
                    *v = Value::Null;
                }
            }
            vals
        }
    }
}

/// Dense rank (0-based) of each row's value within the column.
fn rank_of(col: &[Value]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..col.len()).collect();
    order.sort_by(|&a, &b| col[a].cmp(&col[b]));
    let mut ranks = vec![0usize; col.len()];
    let mut rank = 0usize;
    for (pos, &row) in order.iter().enumerate() {
        if pos > 0 && col[order[pos - 1]] != col[row] {
            rank += 1;
        }
        ranks[row] = rank;
    }
    ranks
}

/// A non-decreasing column of `rows` values over `distinct` classes with
/// random class boundaries.
fn sorted_column(rows: usize, distinct: usize, rng: &mut StdRng) -> Vec<Value> {
    if rows == 0 {
        return Vec::new();
    }
    let distinct = distinct.min(rows).max(1);
    // Random cut points partition the rows into `distinct` runs.
    let mut cuts: Vec<usize> = (0..distinct - 1)
        .map(|_| rng.random_range(0..rows))
        .collect();
    cuts.sort_unstable();
    let mut vals = Vec::with_capacity(rows);
    let mut current = 0i64;
    let mut cut_idx = 0;
    for row in 0..rows {
        while cut_idx < cuts.len() && cuts[cut_idx] <= row {
            current += 1;
            cut_idx += 1;
        }
        vals.push(Value::Int(current));
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_core::{check_ocd, check_od, AttrList};

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn key_column_is_unique() {
        let spec = TableSpec::new(vec![("k", ColumnSpec::Key)], 100);
        let rel = spec.generate(1);
        assert_eq!(rel.meta(0).distinct, 100);
    }

    #[test]
    fn constant_and_quasi_constant_shapes() {
        let spec = TableSpec::new(
            vec![
                ("c", ColumnSpec::Constant(42)),
                ("q", ColumnSpec::QuasiConstant { distinct: 3 }),
            ],
            500,
        );
        let rel = spec.generate(2);
        assert!(rel.meta(0).is_constant());
        let q = rel.meta(1).distinct;
        assert!(
            (2..=3).contains(&q),
            "quasi-constant has {q} distinct values"
        );
    }

    #[test]
    fn ordered_by_plants_an_od() {
        let spec = TableSpec::new(
            vec![
                ("a", ColumnSpec::Key),
                (
                    "b",
                    ColumnSpec::OrderedBy {
                        source: 0,
                        coarseness: 10,
                    },
                ),
            ],
            200,
        );
        let rel = spec.generate(3);
        assert!(check_od(&rel, &l(&[0]), &l(&[1])).is_valid());
        // b has ties, a is a key: the reverse cannot hold.
        assert!(!check_od(&rel, &l(&[1]), &l(&[0])).is_valid());
    }

    #[test]
    fn equivalent_to_plants_an_equivalence() {
        let spec = TableSpec::new(
            vec![
                ("a", ColumnSpec::RandomInt { distinct: 50 }),
                (
                    "b",
                    ColumnSpec::EquivalentTo {
                        source: 0,
                        scale: 3,
                        offset: -7,
                    },
                ),
            ],
            300,
        );
        let rel = spec.generate(4);
        assert!(check_od(&rel, &l(&[0]), &l(&[1])).is_valid());
        assert!(check_od(&rel, &l(&[1]), &l(&[0])).is_valid());
    }

    #[test]
    fn co_monotone_plants_ocd_without_od() {
        let spec = TableSpec::new(
            vec![
                ("a", ColumnSpec::SortedInt { distinct: 20 }),
                (
                    "b",
                    ColumnSpec::CoMonotoneWith {
                        source: 0,
                        distinct: 20,
                    },
                ),
            ],
            400,
        );
        let rel = spec.generate(5);
        assert!(check_ocd(&rel, &l(&[0]), &l(&[1])).is_valid());
        // With independent tie structure, neither side should order the
        // other (overwhelmingly likely at these sizes).
        assert!(!check_od(&rel, &l(&[0]), &l(&[1])).is_valid());
        assert!(!check_od(&rel, &l(&[1]), &l(&[0])).is_valid());
    }

    #[test]
    fn nulls_are_injected() {
        let spec = TableSpec::new(
            vec![(
                "n",
                ColumnSpec::WithNulls {
                    inner: Box::new(ColumnSpec::RandomInt { distinct: 10 }),
                    null_rate: 0.3,
                },
            )],
            1000,
        );
        let rel = spec.generate(6);
        assert!(rel.meta(0).has_nulls);
        let nulls = (0..1000).filter(|&r| rel.value(r, 0).is_null()).count();
        assert!(
            (150..=450).contains(&nulls),
            "null count {nulls} out of expected band"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TableSpec::new(
            vec![
                ("a", ColumnSpec::Key),
                ("b", ColumnSpec::RandomInt { distinct: 5 }),
            ],
            50,
        );
        let r1 = spec.generate(99);
        let r2 = spec.generate(99);
        for row in 0..50 {
            for col in 0..2 {
                assert_eq!(r1.value(row, col), r2.value(row, col));
            }
        }
        // A different seed produces different data.
        let r3 = spec.generate(100);
        let same = (0..50).all(|row| r1.value(row, 0) == r3.value(row, 0));
        assert!(!same);
    }

    #[test]
    fn random_str_column_is_typed_str() {
        use ocdd_relation::DataType;
        let spec = TableSpec::new(vec![("s", ColumnSpec::RandomStr { distinct: 8 })], 100);
        let rel = spec.generate(7);
        assert_eq!(rel.meta(0).data_type, DataType::Str);
        assert!(rel.meta(0).distinct <= 8);
    }

    #[test]
    fn zero_rows_supported() {
        let spec = TableSpec::new(
            vec![
                ("a", ColumnSpec::Key),
                ("s", ColumnSpec::SortedInt { distinct: 4 }),
            ],
            0,
        );
        let rel = spec.generate(8);
        assert_eq!(rel.num_rows(), 0);
    }
}
