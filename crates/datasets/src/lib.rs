//! Datasets for the OCDDISCOVER reproduction.
//!
//! Two families:
//!
//! * [`paper`] — the exact small tables printed in the paper (Table 1 tax
//!   data, the YES/NO relations of Table 5, the NUMBERS relation of
//!   Table 7).
//! * Synthetic stand-ins for the evaluation datasets of §5.1 (the HPI
//!   repeatability datasets and TPC-H LINEITEM are external resources; the
//!   generators reproduce each dataset's *shape* — row/column counts, the
//!   mix of keys, correlated columns, categoricals, quasi-constants,
//!   constants and NULLs — which is what drives the experiments'
//!   behaviour). See DESIGN.md §4 for the substitution rationale.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible run to run.
//!
//! ```
//! use ocdd_datasets::{Dataset, RowScale};
//!
//! let rel = Dataset::Hepatitis.generate(RowScale::Default);
//! assert_eq!(rel.num_columns(), 20);
//! assert_eq!(rel.num_rows(), 155);
//! ```

#![warn(missing_docs)]
pub mod adversarial;
pub mod paper;
pub mod registry;
pub mod synthetic;
pub mod tpch;

pub use registry::{Dataset, RowScale};
pub use synthetic::{ColumnSpec, TableSpec};
