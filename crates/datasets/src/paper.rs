//! The exact example relations printed in the paper.

use ocdd_relation::{Relation, RelationBuilder, Value};

/// Table 1: the tax-information relation motivating the paper.
///
/// Holding dependencies include `income → bracket`, `income ↔ tax`,
/// and the OCD `income ~ savings`.
pub fn tax_table() -> Relation {
    let mut b = RelationBuilder::new(vec!["name", "income", "savings", "bracket", "tax"]);
    let rows: [(&str, i64, i64, i64, i64); 6] = [
        ("T. Green", 35_000, 3_000, 1, 5_250),
        ("J. Smith", 40_000, 4_000, 1, 6_000),
        ("J. Doe", 40_000, 3_800, 1, 6_000),
        ("S. Black", 55_000, 6_500, 2, 8_500),
        ("W. White", 60_000, 6_500, 2, 9_500),
        ("M. Darrel", 80_000, 10_000, 3, 14_000),
    ];
    for (name, income, savings, bracket, tax) in rows {
        b.push_row(vec![
            Value::Str(name.to_owned()),
            Value::Int(income),
            Value::Int(savings),
            Value::Int(bracket),
            Value::Int(tax),
        ])
        .expect("fixed arity");
    }
    b.finish()
}

/// The YES relation (Table 5 (a)): neither `A → B` nor `B → A` holds
/// (splits in both directions) yet `A ~ B` does, i.e. `AB ↔ BA` and
/// `AB → B`. ORDER cannot discover any dependency here; OCDDISCOVER finds
/// `A ~ B`.
pub fn yes_table() -> Relation {
    two_col(&[(1, 1), (1, 2), (2, 2), (2, 3), (3, 3)])
}

/// The NO relation (Table 5 (b)): no OD and no OCD holds between `A` and
/// `B` — splits in both directions *and* a swap.
pub fn no_table() -> Relation {
    two_col(&[(1, 4), (2, 5), (3, 6), (3, 7), (4, 1)])
}

fn two_col(rows: &[(i64, i64)]) -> Relation {
    let mut b = RelationBuilder::new(vec!["A", "B"]);
    for &(a, bv) in rows {
        b.push_row(vec![Value::Int(a), Value::Int(bv)])
            .expect("fixed arity");
    }
    b.finish()
}

/// The NUMBERS relation (Table 7): a small numeric table on which the
/// reference FASTOD implementation reported spurious dependencies such as
/// `[B] → [AC]` (§5.2.2). The dependency is genuinely invalid here
/// (sorting by `B` produces a swap on `(A,C)`), which the test-suite pins
/// down for both our OCDDISCOVER and our FASTOD reimplementation.
pub fn numbers_table() -> Relation {
    let mut b = RelationBuilder::new(vec!["A", "B", "C", "D", "E"]);
    let rows: [[i64; 5]; 6] = [
        [1, 3, 1, 1, 1],
        [2, 3, 2, 2, 2],
        [3, 2, 2, 2, 3],
        [3, 1, 2, 3, 4],
        [4, 4, 2, 4, 5],
        [4, 5, 3, 2, 6],
    ];
    for row in rows {
        b.push_row(row.into_iter().map(Value::Int).collect())
            .expect("fixed arity");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_core::{check_ocd, check_od, AttrList, CheckOutcome};

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn tax_table_dependencies_match_the_paper() {
        let r = tax_table();
        let income = r.column_id("income").unwrap();
        let bracket = r.column_id("bracket").unwrap();
        let tax = r.column_id("tax").unwrap();
        let savings = r.column_id("savings").unwrap();
        // income -> bracket, income <-> tax.
        assert!(check_od(&r, &l(&[income]), &l(&[bracket])).is_valid());
        assert!(check_od(&r, &l(&[income]), &l(&[tax])).is_valid());
        assert!(check_od(&r, &l(&[tax]), &l(&[income])).is_valid());
        // income ~ savings but income does not order savings (split at 40k).
        assert!(check_ocd(&r, &l(&[income]), &l(&[savings])).is_valid());
        assert!(matches!(
            check_od(&r, &l(&[income]), &l(&[savings])),
            CheckOutcome::Split { .. }
        ));
        // tax -> bracket follows transitively and holds directly on data.
        assert!(check_od(&r, &l(&[tax]), &l(&[bracket])).is_valid());
    }

    #[test]
    fn yes_table_properties() {
        let r = yes_table();
        // Neither direction of the OD holds…
        assert!(!check_od(&r, &l(&[0]), &l(&[1])).is_valid());
        assert!(!check_od(&r, &l(&[1]), &l(&[0])).is_valid());
        // …both failures are splits, not swaps…
        assert!(matches!(
            check_od(&r, &l(&[0]), &l(&[1])),
            CheckOutcome::Split { .. }
        ));
        assert!(matches!(
            check_od(&r, &l(&[1]), &l(&[0])),
            CheckOutcome::Split { .. }
        ));
        // …so the OCD holds: AB <-> BA and AB -> B.
        assert!(check_ocd(&r, &l(&[0]), &l(&[1])).is_valid());
        assert!(check_od(&r, &l(&[0, 1]), &l(&[1])).is_valid());
    }

    #[test]
    fn no_table_properties() {
        let r = no_table();
        assert!(!check_od(&r, &l(&[0]), &l(&[1])).is_valid());
        assert!(!check_od(&r, &l(&[1]), &l(&[0])).is_valid());
        // A swap exists, so not even the OCD holds.
        assert!(matches!(
            check_ocd(&r, &l(&[0]), &l(&[1])),
            CheckOutcome::Swap { .. }
        ));
        assert!(!check_od(&r, &l(&[0, 1]), &l(&[1])).is_valid());
    }

    #[test]
    fn numbers_table_b_does_not_order_ac() {
        let r = numbers_table();
        let (a, b, c) = (0usize, 1usize, 2usize);
        // The reference FASTOD's spurious claim: [B] -> [A,C]. It is false.
        assert!(!check_od(&r, &l(&[b]), &l(&[a, c])).is_valid());
    }

    #[test]
    fn table_shapes() {
        assert_eq!(tax_table().num_rows(), 6);
        assert_eq!(tax_table().num_columns(), 5);
        assert_eq!(yes_table().num_rows(), 5);
        assert_eq!(no_table().num_rows(), 5);
        assert_eq!(numbers_table().num_columns(), 5);
        assert_eq!(numbers_table().num_rows(), 6);
    }
}
