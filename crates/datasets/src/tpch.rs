//! A TPC-H-like LINEITEM generator.
//!
//! The paper's row-scalability experiment (§5.3.1, Figure 2) runs on TPC-H
//! LINEITEM with 6,001,215 rows and 16 columns. This generator reproduces
//! the table's *structure*: the 16 columns with their real names and types,
//! the key layout (orderkey/linenumber), the pricing arithmetic
//! (`extendedprice = quantity × a part price`), date ordering
//! (`shipdate ≤ commitdate ≤ receiptdate` correlations) and the
//! low-cardinality flag/status columns. Absolute values are synthetic.

use ocdd_relation::{Relation, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of columns in LINEITEM.
pub const LINEITEM_COLUMNS: usize = 16;

/// Full-scale row count used by the paper.
pub const LINEITEM_FULL_ROWS: usize = 6_001_215;

/// Generate a LINEITEM-like relation with `rows` rows.
pub fn lineitem(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut orderkey = Vec::with_capacity(rows);
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut linenumber = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut returnflag = Vec::with_capacity(rows);
    let mut linestatus = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    let mut commitdate = Vec::with_capacity(rows);
    let mut receiptdate = Vec::with_capacity(rows);
    let mut shipinstruct = Vec::with_capacity(rows);
    let mut shipmode = Vec::with_capacity(rows);
    let mut comment = Vec::with_capacity(rows);

    const INSTRUCTS: [&str; 4] = [
        "DELIVER IN PERSON",
        "COLLECT COD",
        "NONE",
        "TAKE BACK RETURN",
    ];
    const MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

    let mut order = 1i64;
    let mut line_in_order = 1i64;
    for _ in 0..rows {
        // 1–7 lines per order, like real TPC-H.
        if line_in_order > rng.random_range(1..=7) {
            order += 1;
            line_in_order = 1;
        }
        let pk = rng.random_range(1..200_000i64);
        let qty = rng.random_range(1..=50i64);
        // Part price is a deterministic function of partkey, as in TPC-H.
        let part_price = 90_000 + (pk % 20_000) * 10 + (pk / 10) % 1_000;
        let eprice = qty * part_price;
        let ship = rng.random_range(8_000..10_600i64); // days since epoch-ish
        let commit = ship + rng.random_range(-30..60i64);
        let receipt = ship + rng.random_range(1..=30i64);

        orderkey.push(Value::Int(order));
        partkey.push(Value::Int(pk));
        suppkey.push(Value::Int(pk % 10_000 + 1));
        linenumber.push(Value::Int(line_in_order));
        quantity.push(Value::Int(qty));
        extendedprice.push(Value::Int(eprice));
        discount.push(Value::Int(rng.random_range(0..=10i64)));
        tax.push(Value::Int(rng.random_range(0..=8i64)));
        let rf = match rng.random_range(0..3) {
            0 => "A",
            1 => "N",
            _ => "R",
        };
        returnflag.push(Value::Str(rf.to_owned()));
        linestatus.push(Value::Str(if ship > 9_500 { "O" } else { "F" }.to_owned()));
        shipdate.push(Value::Int(ship));
        commitdate.push(Value::Int(commit));
        receiptdate.push(Value::Int(receipt));
        shipinstruct.push(Value::Str(
            INSTRUCTS[rng.random_range(0..4usize)].to_owned(),
        ));
        shipmode.push(Value::Str(MODES[rng.random_range(0..7usize)].to_owned()));
        comment.push(Value::Str(format!("c{}", rng.random_range(0..1_000_000))));
        line_in_order += 1;
    }

    Relation::from_columns(vec![
        ("l_orderkey".into(), orderkey),
        ("l_partkey".into(), partkey),
        ("l_suppkey".into(), suppkey),
        ("l_linenumber".into(), linenumber),
        ("l_quantity".into(), quantity),
        ("l_extendedprice".into(), extendedprice),
        ("l_discount".into(), discount),
        ("l_tax".into(), tax),
        ("l_returnflag".into(), returnflag),
        ("l_linestatus".into(), linestatus),
        ("l_shipdate".into(), shipdate),
        ("l_commitdate".into(), commitdate),
        ("l_receiptdate".into(), receiptdate),
        ("l_shipinstruct".into(), shipinstruct),
        ("l_shipmode".into(), shipmode),
        ("l_comment".into(), comment),
    ])
    .expect("columns have equal length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_tpch() {
        let rel = lineitem(100, 1);
        assert_eq!(rel.num_columns(), LINEITEM_COLUMNS);
        assert_eq!(rel.num_rows(), 100);
        assert_eq!(rel.column_names()[0], "l_orderkey");
        assert_eq!(rel.column_names()[15], "l_comment");
    }

    #[test]
    fn orderkey_is_nondecreasing_and_linenumber_small() {
        let rel = lineitem(500, 2);
        let ok = rel.column_id("l_orderkey").unwrap();
        for r in 1..rel.num_rows() {
            assert!(rel.code(r - 1, ok) <= rel.code(r, ok));
        }
        let ln = rel.column_id("l_linenumber").unwrap();
        assert!(rel.meta(ln).distinct <= 7);
    }

    #[test]
    fn flag_columns_are_low_cardinality() {
        let rel = lineitem(2000, 3);
        assert!(rel.meta(rel.column_id("l_returnflag").unwrap()).distinct <= 3);
        assert!(rel.meta(rel.column_id("l_linestatus").unwrap()).distinct <= 2);
        assert!(rel.meta(rel.column_id("l_shipmode").unwrap()).distinct <= 7);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lineitem(50, 7);
        let b = lineitem(50, 7);
        for r in 0..50 {
            assert_eq!(a.value(r, 5), b.value(r, 5));
        }
    }
}
