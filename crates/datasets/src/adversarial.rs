//! Adversarial and extreme-case relations used by tests and benches.
//!
//! These pin down the boundary behaviour the paper argues about in §3.1
//! (size of the minimal representation) and §3.2 (the factorial candidate
//! space):
//!
//! * [`all_equivalent`] — every column order equivalent to every other:
//!   the minimal representation is `n − 1` equivalence facts while the set
//!   of valid ODs is `O(n²)` (§3.1's compression argument);
//! * [`all_order_compatible`] — one big co-monotone block with no ODs
//!   inside: the candidate tree degenerates to the factorial worst case;
//! * [`swap_dense`] — pairwise swaps everywhere: every level-2 candidate
//!   dies immediately, the best case for pruning;
//! * [`all_constant`] — column reduction removes everything.

use crate::synthetic::{ColumnSpec, TableSpec};
use ocdd_relation::Relation;

/// `n` columns that are all strictly monotone transforms of one key:
/// a single order-equivalence class of size `n`.
pub fn all_equivalent(n: usize, rows: usize, seed: u64) -> Relation {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![("c0", ColumnSpec::Key)];
    for i in 1..n {
        let name: &'static str = Box::leak(format!("c{i}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::EquivalentTo {
                source: 0,
                scale: 1 + i as i64,
                offset: i as i64,
            },
        ));
    }
    TableSpec::new(cols, rows).generate(seed)
}

/// `n` columns forming one mutually order-compatible block with independent
/// tie structure (no ODs, all OCDs): the factorial-tree worst case.
pub fn all_order_compatible(n: usize, rows: usize, distinct: usize, seed: u64) -> Relation {
    let mut cols: Vec<(&str, ColumnSpec)> = vec![("c0", ColumnSpec::SortedInt { distinct })];
    for i in 1..n {
        let name: &'static str = Box::leak(format!("c{i}").into_boxed_str());
        cols.push((
            name,
            ColumnSpec::CoMonotoneWith {
                source: 0,
                distinct: distinct + i,
            },
        ));
    }
    TableSpec::new(cols, rows).generate(seed)
}

/// `n` independent high-cardinality random columns: swaps everywhere, the
/// whole tree prunes at level 2.
pub fn swap_dense(n: usize, rows: usize, seed: u64) -> Relation {
    let cols: Vec<(&str, ColumnSpec)> = (0..n)
        .map(|i| {
            let name: &'static str = Box::leak(format!("c{i}").into_boxed_str());
            (
                name,
                ColumnSpec::RandomInt {
                    distinct: rows.max(4),
                },
            )
        })
        .collect();
    TableSpec::new(cols, rows).generate(seed)
}

/// `n` constant columns.
pub fn all_constant(n: usize, rows: usize) -> Relation {
    let cols: Vec<(&str, ColumnSpec)> = (0..n)
        .map(|i| {
            let name: &'static str = Box::leak(format!("c{i}").into_boxed_str());
            (name, ColumnSpec::Constant(i as i64))
        })
        .collect();
    TableSpec::new(cols, rows).generate(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_core::{check_ocd, check_od, discover, AttrList, DiscoveryConfig};

    #[test]
    fn all_equivalent_collapses_to_one_class() {
        let rel = all_equivalent(6, 40, 1);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert_eq!(result.equivalence_classes, vec![(0..6).collect::<Vec<_>>()]);
        // §3.1: the minimal representation is n-1 facts…
        assert_eq!(result.equivalences().len(), 5);
        // …standing for n(n-1) = 30 single-column ODs.
        use ocdd_core::expand::expanded_od_count;
        assert_eq!(expanded_od_count(&result), 30);
        // And the search itself had nothing left to do.
        assert!(result.ocds.is_empty());
        assert_eq!(result.reduced_attributes, vec![0]);
    }

    #[test]
    fn all_order_compatible_has_all_pairwise_ocds_and_no_ods() {
        let rel = all_order_compatible(4, 60, 10, 2);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    check_ocd(&rel, &AttrList::single(i), &AttrList::single(j)).is_valid(),
                    "c{i} ~ c{j} must hold"
                );
                assert!(!check_od(&rel, &AttrList::single(i), &AttrList::single(j)).is_valid());
                assert!(!check_od(&rel, &AttrList::single(j), &AttrList::single(i)).is_valid());
            }
        }
    }

    #[test]
    fn block_tree_grows_superlinearly_in_block_width() {
        // The §3.2 argument made concrete: checks explode with block width.
        let checks = |n: usize| {
            let rel = all_order_compatible(n, 50, 8, 3);
            discover(&rel, &DiscoveryConfig::default()).checks
        };
        let (c3, c5) = (checks(3), checks(5));
        assert!(c5 > 4 * c3, "expected superlinear growth, got {c3} -> {c5}");
    }

    #[test]
    fn swap_dense_prunes_everything_at_level_2() {
        let rel = swap_dense(6, 80, 4);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert!(result.ocds.is_empty());
        assert!(result.ods.is_empty());
        // Reduction (n·(n-1)) + level-2 seeds (n·(n-1)/2 OCD checks only,
        // no OD checks since every OCD fails).
        assert_eq!(result.checks, 30 + 15);
    }

    #[test]
    fn all_constant_reduces_to_nothing() {
        let rel = all_constant(5, 20);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert_eq!(result.constants, vec![0, 1, 2, 3, 4]);
        assert_eq!(result.checks, 0, "no live columns, no checks");
        assert!(result.complete());
    }
}
