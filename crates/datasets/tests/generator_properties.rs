//! Property-based tests: the structural invariants every generated table
//! must satisfy, for arbitrary seeds and sizes.

use ocdd_core::{check_ocd, check_od, AttrList};
use ocdd_datasets::{ColumnSpec, Dataset, RowScale, TableSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `OrderedBy` always plants a valid OD, for any seed and size.
    #[test]
    fn ordered_by_invariant(seed in 0u64..10_000, rows in 2usize..200, coarse in 1usize..20) {
        let rel = TableSpec::new(
            vec![
                ("src", ColumnSpec::Key),
                ("dst", ColumnSpec::OrderedBy { source: 0, coarseness: coarse }),
            ],
            rows,
        )
        .generate(seed);
        prop_assert!(check_od(&rel, &AttrList::single(0), &AttrList::single(1)).is_valid());
    }

    /// `EquivalentTo` always plants a two-way OD.
    #[test]
    fn equivalent_to_invariant(seed in 0u64..10_000, rows in 2usize..200, scale in 1i64..50) {
        let rel = TableSpec::new(
            vec![
                ("src", ColumnSpec::RandomInt { distinct: 30 }),
                ("dst", ColumnSpec::EquivalentTo { source: 0, scale, offset: -5 }),
            ],
            rows,
        )
        .generate(seed);
        prop_assert!(check_od(&rel, &AttrList::single(0), &AttrList::single(1)).is_valid());
        prop_assert!(check_od(&rel, &AttrList::single(1), &AttrList::single(0)).is_valid());
    }

    /// Co-monotone columns are always order compatible, and columns in the
    /// same `PermutedSorted` group likewise.
    #[test]
    fn co_monotone_invariant(seed in 0u64..10_000, rows in 2usize..200) {
        let rel = TableSpec::new(
            vec![
                ("a", ColumnSpec::SortedInt { distinct: 12 }),
                ("b", ColumnSpec::CoMonotoneWith { source: 0, distinct: 9 }),
                ("p1", ColumnSpec::PermutedSorted { group: 9, distinct: 10 }),
                ("p2", ColumnSpec::PermutedSorted { group: 9, distinct: 7 }),
            ],
            rows,
        )
        .generate(seed);
        prop_assert!(check_ocd(&rel, &AttrList::single(0), &AttrList::single(1)).is_valid());
        prop_assert!(check_ocd(&rel, &AttrList::single(2), &AttrList::single(3)).is_valid());
    }

    /// Constants are constant and keys are unique, at every size.
    #[test]
    fn constant_and_key_invariants(seed in 0u64..10_000, rows in 1usize..300) {
        let rel = TableSpec::new(
            vec![("k", ColumnSpec::Key), ("c", ColumnSpec::Constant(3))],
            rows,
        )
        .generate(seed);
        prop_assert_eq!(rel.meta(0).distinct, rows);
        prop_assert!(rel.meta(1).is_constant());
    }

    /// Dataset generation is pure: same scale, same bytes.
    #[test]
    fn registry_generation_is_pure(rows in 5usize..60) {
        for ds in [Dataset::Hepatitis, Dataset::Ncvoter1k] {
            let a = ds.generate(RowScale::Rows(rows));
            let b = ds.generate(RowScale::Rows(rows));
            prop_assert_eq!(a.num_rows(), b.num_rows());
            for r in 0..a.num_rows() {
                for c in 0..a.num_columns() {
                    prop_assert_eq!(a.value(r, c), b.value(r, c));
                }
            }
        }
    }

    /// NULL injection respects the rate direction: more requested, more
    /// observed (statistically, with generous slack).
    #[test]
    fn null_rates_are_ordered(seed in 0u64..1_000) {
        let gen_nulls = |rate: f64| -> usize {
            let rel = TableSpec::new(
                vec![(
                    "n",
                    ColumnSpec::WithNulls {
                        inner: Box::new(ColumnSpec::RandomInt { distinct: 10 }),
                        null_rate: rate,
                    },
                )],
                600,
            )
            .generate(seed);
            (0..600).filter(|&r| rel.value(r, 0).is_null()).count()
        };
        let low = gen_nulls(0.05);
        let high = gen_nulls(0.5);
        prop_assert!(high > low, "high-rate nulls {high} <= low-rate nulls {low}");
    }
}
