//! Baseline algorithms the paper compares OCDDISCOVER against (§5.2).
//!
//! * [`partitions`] — stripped partitions (`π̄`), the shared machinery of
//!   TANE-style algorithms.
//! * [`fd`] — TANE-style minimal functional dependency discovery (the
//!   scalable FD baseline).
//! * [`mod@fastfds`] — FastFDs (difference sets + minimal covers), the
//!   algorithm the paper actually quotes for the `|Fd|` column; both FD
//!   discoverers return the same complete minimal FD set (tested).
//! * [`order`] — ORDER (Langer & Naumann): a levelwise lattice over OD
//!   candidates with disjoint, duplicate-free attribute lists. Faithfully
//!   incomplete: it cannot find dependencies with repeated attributes, so
//!   it discovers nothing on the YES dataset.
//! * [`mod@fastod`] — FASTOD (Szlichta et al.): complete OD discovery over
//!   set-based canonical forms with `O(2^n)` worst case. Our
//!   reimplementation is correct; the reference implementation's bug on
//!   the NUMBERS dataset (§5.2.2) intentionally does not reproduce.

#![warn(missing_docs)]
pub mod fastfds;
pub mod fastod;
pub mod fd;
pub mod order;
pub mod partitions;

pub use fastfds::{fastfds, FastFdsConfig, FastFdsResult};
pub use fastod::{fastod, FastodConfig, FastodResult};
pub use fd::{tane, TaneConfig, TaneResult};
pub use order::{order_discover, OrderConfig, OrderResult};
pub use partitions::StrippedPartition;
