//! FASTOD (Szlichta, Godfrey, Golab, Kargar, Srivastava): complete order
//! dependency discovery over **set-based canonical forms**.
//!
//! Every order dependency maps to canonical dependencies of two shapes over
//! an attribute-set *context* `X`:
//!
//! * `X: [] → A` — the FD `X → A` (within each equivalence class of `π_X`,
//!   `A` is constant);
//! * `X: A ~ B` — within each equivalence class of the context's
//!   partition, attributes `A` and `B` are order compatible (no swap).
//!
//! The discovered set consists of the *minimal* canonical dependencies:
//! FDs with no determining subset, and pair compatibilities with no valid
//! sub-context. Our implementation computes the FD shape with the TANE
//! lattice ([`crate::fd`]) and the OC shape with a per-pair breadth-first
//! sweep over contexts, sharing one stripped-partition cache. This is a
//! reformulation of FASTOD's candidate propagation with identical output;
//! the worst case is the same `O(2^n)` in the number of attributes that the
//! paper contrasts with OCDDISCOVER (§5.2.2, §6).
//!
//! This reimplementation is *correct* on the NUMBERS dataset where the
//! reference implementation reported spurious dependencies (§5.2.2); the
//! test-suite verifies agreement with brute force instead.

use crate::fd::{tane, AttrSet, Fd, TaneConfig};
use crate::partitions::StrippedPartition;
use ocdd_relation::{ColumnId, Relation};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[inline]
fn bit(col: ColumnId) -> AttrSet {
    1u128 << col
}

fn members(set: AttrSet) -> impl Iterator<Item = ColumnId> {
    (0..128usize).filter(move |&i| set & (1u128 << i) != 0)
}

/// A canonical order compatibility dependency `context: A ~ B`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalOcd {
    /// Context attribute set, ascending.
    pub context: Vec<ColumnId>,
    /// First attribute of the pair (`a < b`).
    pub a: ColumnId,
    /// Second attribute of the pair.
    pub b: ColumnId,
}

impl std::fmt::Display for CanonicalOcd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.context.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}: {} ~ {}", self.a, self.b)
    }
}

/// Configuration for a FASTOD run.
#[derive(Debug, Clone, Default)]
pub struct FastodConfig {
    /// Bound on context size for the OC sweep and LHS size for the FD
    /// lattice. `None` = full.
    pub max_level: Option<usize>,
    /// Wall-clock budget; exceeding it returns partial results.
    pub time_budget: Option<Duration>,
    /// Abort after this many canonical-candidate checks.
    pub max_checks: Option<u64>,
}

/// Output of a FASTOD run.
#[derive(Debug, Clone)]
pub struct FastodResult {
    /// Minimal FDs (the FD-shaped canonical ODs).
    pub fds: Vec<Fd>,
    /// Minimal canonical OCDs.
    pub ocds: Vec<CanonicalOcd>,
    /// Canonical candidates checked (FD lattice nodes + OC contexts).
    pub checks: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// False when a budget stopped the run early.
    pub complete: bool,
}

impl FastodResult {
    /// Total canonical dependencies (the `|Od|` column for FASTOD).
    pub fn od_count(&self) -> usize {
        self.fds.len() + self.ocds.len()
    }
}

/// Check `context: a ~ b` — within each class of the context partition,
/// sort by `(a, b)` and verify `b` never strictly decreases.
fn pair_valid(rel: &Relation, context: &StrippedPartition, a: ColumnId, b: ColumnId) -> bool {
    let ca = rel.codes(a);
    let cb = rel.codes(b);
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for class in &context.classes {
        scratch.clear();
        scratch.extend(class.iter().map(|&r| (ca[r as usize], cb[r as usize])));
        scratch.sort_unstable();
        for w in scratch.windows(2) {
            // Sorted by (a, b): a tie on `a` cannot decrease `b`, so any
            // decrease in `b` is a genuine swap.
            if w[1].1 < w[0].1 {
                return false;
            }
        }
    }
    true
}

/// Lazily computed stripped partitions per attribute set.
struct PartitionCache<'r> {
    rel: &'r Relation,
    cache: HashMap<AttrSet, StrippedPartition>,
}

impl<'r> PartitionCache<'r> {
    fn new(rel: &'r Relation) -> PartitionCache<'r> {
        let mut cache = HashMap::new();
        cache.insert(0, StrippedPartition::unit(rel.num_rows()));
        PartitionCache { rel, cache }
    }

    fn get(&mut self, set: AttrSet) -> &StrippedPartition {
        if !self.cache.contains_key(&set) {
            let highest = 127 - set.leading_zeros() as usize;
            let rest = set & !bit(highest);
            let single = StrippedPartition::for_column(self.rel, highest);
            let combined = if rest == 0 {
                single
            } else {
                self.get(rest);
                self.cache[&rest].product(&single)
            };
            self.cache.insert(set, combined);
        }
        &self.cache[&set]
    }
}

/// Run FASTOD over `rel`.
pub fn fastod(rel: &Relation, config: &FastodConfig) -> FastodResult {
    let start = Instant::now();
    let n = rel.num_columns();
    assert!(n <= 128, "FASTOD baseline supports up to 128 columns");
    let deadline = config.time_budget.map(|d| start + d);
    let max_checks = config.max_checks.unwrap_or(u64::MAX);

    // FD-shaped canonical ODs via the TANE lattice.
    let tane_result = tane(
        rel,
        &TaneConfig {
            max_level: config.max_level,
            time_budget: config.time_budget,
        },
    );
    let fds = tane_result.fds;
    let mut checks = tane_result.nodes_visited;
    let mut complete = tane_result.complete;

    // OC-shaped canonical ODs: per-pair minimal-context BFS.
    let mut cache = PartitionCache::new(rel);
    let mut ocds: Vec<CanonicalOcd> = Vec::new();

    'pairs: for a in 0..n {
        for b in (a + 1)..n {
            // BFS over contexts in ascending-extension order: every context
            // set is generated exactly once, smallest sets first.
            let mut level: Vec<AttrSet> = vec![0];
            let mut valid_contexts: Vec<AttrSet> = Vec::new();
            let mut level_no = 0usize;
            while !level.is_empty() {
                if config.max_level.is_some_and(|max| level_no > max) {
                    complete = false;
                    break;
                }
                let mut next: Vec<AttrSet> = Vec::new();
                for &k in &level {
                    if checks >= max_checks || deadline.is_some_and(|d| Instant::now() >= d) {
                        complete = false;
                        break 'pairs;
                    }
                    // Minimality: a valid subset context implies this one.
                    // (subset test, not an equality — clippy's `contains`
                    // suggestion would change semantics)
                    #[allow(clippy::manual_contains)]
                    if valid_contexts.iter().any(|&v| v & k == v) {
                        continue;
                    }
                    checks += 1;
                    let partition = cache.get(k);
                    if pair_valid(rel, partition, a, b) {
                        valid_contexts.push(k);
                        ocds.push(CanonicalOcd {
                            context: members(k).collect(),
                            a,
                            b,
                        });
                    } else {
                        // Extend with attributes above the current maximum
                        // (canonical single-path set generation).
                        let min_next = if k == 0 {
                            0
                        } else {
                            128 - k.leading_zeros() as usize
                        };
                        for c in min_next..n {
                            if c != a && c != b && k & bit(c) == 0 {
                                next.push(k | bit(c));
                            }
                        }
                    }
                }
                level = next;
                level_no += 1;
            }
        }
    }

    ocds.sort_by(|x, y| {
        (x.context.len(), &x.context, x.a, x.b).cmp(&(y.context.len(), &y.context, y.a, y.b))
    });
    ocds.dedup();
    FastodResult {
        fds,
        ocds,
        checks,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    /// Brute-force minimal canonical OCDs for cross-checking.
    fn brute_canonical_ocds(r: &Relation) -> Vec<CanonicalOcd> {
        let n = r.num_columns();
        let mut out = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let others: Vec<usize> = (0..n).filter(|&c| c != a && c != b).collect();
                let mut valid_sets: Vec<AttrSet> = Vec::new();
                // Enumerate contexts by increasing size.
                let mut all_subsets: Vec<AttrSet> = vec![0];
                for &c in &others {
                    let mut grown: Vec<AttrSet> = all_subsets.iter().map(|&s| s | bit(c)).collect();
                    all_subsets.append(&mut grown);
                }
                all_subsets.sort_by_key(|s| s.count_ones());
                for k in all_subsets {
                    // Subset test, not membership (see the main sweep).
                    #[allow(clippy::manual_contains)]
                    if valid_sets.iter().any(|&v| v & k == v) {
                        continue;
                    }
                    let mut part = StrippedPartition::unit(r.num_rows());
                    for c in members(k) {
                        part = part.product(&StrippedPartition::for_column(r, c));
                    }
                    if pair_valid(r, &part, a, b) {
                        valid_sets.push(k);
                        out.push(CanonicalOcd {
                            context: members(k).collect(),
                            a,
                            b,
                        });
                    }
                }
            }
        }
        out.sort_by(|x, y| {
            (x.context.len(), &x.context, x.a, x.b).cmp(&(y.context.len(), &y.context, y.a, y.b))
        });
        out
    }

    #[test]
    fn empty_context_pair_matches_global_ocd() {
        // A ~ B globally (YES-style) => canonical OCD with empty context.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let result = fastod(&r, &FastodConfig::default());
        assert!(result
            .ocds
            .iter()
            .any(|o| o.context.is_empty() && o.a == 0 && o.b == 1));
    }

    #[test]
    fn contexted_pair_found_when_classes_are_compatible() {
        // Swap between rows of different c-classes only.
        let r = rel(&[
            ("a", &[1, 2, 9, 10]),
            ("b", &[5, 6, 1, 2]),
            ("c", &[0, 0, 1, 1]),
        ]);
        let result = fastod(&r, &FastodConfig::default());
        // Globally a~b fails (rows 1,2: a 2<9, b 6>1). Within c classes it
        // holds: {0,1} increasing, {2,3} increasing.
        assert!(result
            .ocds
            .iter()
            .any(|o| o.context == vec![2] && o.a == 0 && o.b == 1));
        assert!(!result
            .ocds
            .iter()
            .any(|o| o.context.is_empty() && o.a == 0 && o.b == 1));
    }

    #[test]
    fn matches_brute_force_canonical_set() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cols = 4;
            let r = Relation::from_columns(
                (0..cols)
                    .map(|c| {
                        (
                            format!("c{c}"),
                            (0..12)
                                .map(|_| Value::Int(rng.random_range(0..3)))
                                .collect(),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let result = fastod(&r, &FastodConfig::default());
            assert_eq!(result.ocds, brute_canonical_ocds(&r), "seed {seed}");
            assert!(result.complete);
        }
    }

    #[test]
    fn fd_side_matches_tane() {
        use crate::fd::{tane, TaneConfig};
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[1, 1, 2, 2]),
            ("c", &[5, 5, 5, 5]),
        ]);
        let fast = fastod(&r, &FastodConfig::default());
        let t = tane(&r, &TaneConfig::default());
        assert_eq!(fast.fds, t.fds);
    }

    #[test]
    fn numbers_table_no_spurious_dependency() {
        use ocdd_core::check::check_od_pairwise;
        use ocdd_core::AttrList;
        let r = ocdd_datasets::paper::numbers_table();
        let result = fastod(&r, &FastodConfig::default());
        // The reference implementation claimed [B] -> [AC]; it is invalid.
        assert!(!check_od_pairwise(
            &r,
            &AttrList::from_slice(&[1]),
            &AttrList::from_slice(&[0, 2])
        ));
        // [B] -> [AC] would require the FD B -> A; FASTOD must not report it.
        assert!(!result.fds.iter().any(|fd| fd.lhs == vec![1] && fd.rhs == 0));
        // And the canonical set must match brute force exactly.
        assert_eq!(result.ocds, brute_canonical_ocds(&r));
    }

    #[test]
    fn agrees_with_ocddiscover_on_global_singleton_pairs() {
        use ocdd_core::{discover, DiscoveryConfig};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 40..55u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Relation::from_columns(
                (0..3)
                    .map(|c| {
                        (
                            format!("c{c}"),
                            (0..12)
                                .map(|_| Value::Int(rng.random_range(0..4)))
                                .collect(),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let fast = fastod(&r, &FastodConfig::default());
            let ours = discover(
                &r,
                &DiscoveryConfig {
                    column_reduction: false,
                    ..Default::default()
                },
            );
            // Compare the set of globally order-compatible singleton pairs.
            let fast_pairs: std::collections::HashSet<(usize, usize)> = fast
                .ocds
                .iter()
                .filter(|o| o.context.is_empty())
                .map(|o| (o.a, o.b))
                .collect();
            let our_pairs: std::collections::HashSet<(usize, usize)> = ours
                .ocds
                .iter()
                .filter(|o| o.lhs.len() == 1 && o.rhs.len() == 1)
                .map(|o| {
                    let a = o.lhs.as_slice()[0];
                    let b = o.rhs.as_slice()[0];
                    (a.min(b), a.max(b))
                })
                .collect();
            assert_eq!(fast_pairs, our_pairs, "seed {seed}");
        }
    }

    #[test]
    fn budget_stops_early_with_partial_results() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 2, 1]),
            ("b", &[4, 3, 2, 1, 3, 4]),
            ("c", &[1, 2, 1, 2, 2, 1]),
            ("d", &[2, 1, 2, 1, 1, 2]),
        ]);
        let result = fastod(
            &r,
            &FastodConfig {
                max_checks: Some(5),
                ..Default::default()
            },
        );
        assert!(!result.complete);
        assert!(result.checks >= 5);
    }

    #[test]
    fn od_count_sums_components() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[1, 1, 2])]);
        let result = fastod(&r, &FastodConfig::default());
        assert_eq!(result.od_count(), result.fds.len() + result.ocds.len());
        assert!(result.complete);
    }
}
