//! Stripped partitions — the workhorse data structure of TANE-style
//! dependency discovery (Huhtala et al., used by both our [`crate::fd`]
//! and [`mod@crate::fastod`] baselines).
//!
//! The partition `π_X` of a relation under an attribute set `X` groups rows
//! with equal `X`-projections. The *stripped* partition `π̄_X` drops
//! singleton classes: they can never witness a violation. Two facts make
//! partitions efficient:
//!
//! * `π̄_{X ∪ Y}` is the **product** `π̄_X · π̄_Y`, computable in linear time;
//! * the FD `X → A` holds iff the error measure `e(π̄_X)` equals
//!   `e(π̄_{X∪{A}})`, where `e(π̄) = Σ|c| − #classes`.

use ocdd_relation::{ColumnId, Relation};

/// A stripped partition: equivalence classes of row ids with at least two
/// members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// The classes; each inner vector holds ≥ 2 row ids.
    pub classes: Vec<Vec<u32>>,
    /// Total number of rows in the underlying relation.
    pub num_rows: usize,
}

impl StrippedPartition {
    /// The partition of a single column, built from its rank codes.
    pub fn for_column(rel: &Relation, col: ColumnId) -> StrippedPartition {
        let codes = rel.codes(col);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); rel.meta(col).distinct.max(1)];
        for (row, &code) in codes.iter().enumerate() {
            buckets[code as usize].push(row as u32);
        }
        StrippedPartition {
            classes: buckets.into_iter().filter(|c| c.len() >= 2).collect(),
            num_rows: rel.num_rows(),
        }
    }

    /// The partition of the empty attribute set: one class with every row
    /// (or no class at all for relations with fewer than two rows).
    pub fn unit(num_rows: usize) -> StrippedPartition {
        let classes = if num_rows >= 2 {
            vec![(0..num_rows as u32).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, num_rows }
    }

    /// The partition product `π̄_self · π̄_other` (equals `π̄_{X ∪ Y}` when
    /// the operands are `π̄_X` and `π̄_Y`). Linear-time algorithm from TANE.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        debug_assert_eq!(self.num_rows, other.num_rows);
        const NONE: u32 = u32::MAX;
        // Map each row to its class id in `other` (NONE for singletons).
        let mut other_class = vec![NONE; self.num_rows];
        for (cid, class) in other.classes.iter().enumerate() {
            for &row in class {
                other_class[row as usize] = cid as u32;
            }
        }

        let mut out: Vec<Vec<u32>> = Vec::new();
        // For each class of self, split by the other-class id.
        let mut bucket_of: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for class in &self.classes {
            bucket_of.clear();
            for &row in class {
                let oc = other_class[row as usize];
                if oc != NONE {
                    bucket_of.entry(oc).or_default().push(row);
                }
            }
            for (_, rows) in bucket_of.drain() {
                if rows.len() >= 2 {
                    out.push(rows);
                }
            }
        }
        StrippedPartition {
            classes: out,
            num_rows: self.num_rows,
        }
    }

    /// The TANE error measure `e(π̄) = Σ|c| − #classes`: the minimum number
    /// of rows to remove to make the classes singletons.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum::<usize>() - self.classes.len()
    }

    /// Number of stripped classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when every class is a singleton (the attribute set is a
    /// superkey).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Whether the FD `X → A` holds, where `self = π̄_X` and `with_a =
    /// π̄_{X∪{A}}`: refinement by `A` must not split any class.
    pub fn refines_to(&self, with_a: &StrippedPartition) -> bool {
        self.error() == with_a.error()
    }

    /// Direct check that every class is constant on column `col` — an
    /// independent (non-product) way to verify `X → col`.
    pub fn constant_on(&self, rel: &Relation, col: ColumnId) -> bool {
        let codes = rel.codes(col);
        self.classes.iter().all(|class| {
            let first = codes[class[0] as usize];
            class.iter().all(|&r| codes[r as usize] == first)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn sorted(mut p: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut p {
            c.sort_unstable();
        }
        p.sort();
        p
    }

    #[test]
    fn single_column_partition_strips_singletons() {
        let r = rel(&[("a", &[1, 2, 1, 3, 2, 4])]);
        let p = StrippedPartition::for_column(&r, 0);
        assert_eq!(sorted(p.classes.clone()), vec![vec![0, 2], vec![1, 4]]);
        assert_eq!(p.error(), 2);
    }

    #[test]
    fn unit_partition_covers_all_rows() {
        let p = StrippedPartition::unit(4);
        assert_eq!(p.classes, vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.error(), 3);
        assert!(StrippedPartition::unit(1).is_empty());
        assert!(StrippedPartition::unit(0).is_empty());
    }

    #[test]
    fn product_equals_combined_grouping() {
        let r = rel(&[("a", &[1, 1, 1, 2, 2, 2]), ("b", &[1, 1, 2, 1, 1, 2])]);
        let pa = StrippedPartition::for_column(&r, 0);
        let pb = StrippedPartition::for_column(&r, 1);
        let pab = pa.product(&pb);
        // Groups under (a,b): {0,1}, {3,4}; rows 2 and 5 are singletons.
        assert_eq!(sorted(pab.classes), vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn product_is_commutative_on_error() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3, 1, 2]),
            ("b", &[1, 2, 1, 2, 1, 2, 1, 1]),
        ]);
        let pa = StrippedPartition::for_column(&r, 0);
        let pb = StrippedPartition::for_column(&r, 1);
        assert_eq!(
            sorted(pa.product(&pb).classes),
            sorted(pb.product(&pa).classes)
        );
    }

    #[test]
    fn superkey_has_empty_partition() {
        let r = rel(&[("a", &[1, 1, 2, 2]), ("b", &[1, 2, 1, 2])]);
        let p = StrippedPartition::for_column(&r, 0).product(&StrippedPartition::for_column(&r, 1));
        assert!(p.is_empty());
    }

    #[test]
    fn refinement_detects_fd() {
        // a -> b holds; b -> a does not.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[7, 7, 8, 8, 8])]);
        let pa = StrippedPartition::for_column(&r, 0);
        let pb = StrippedPartition::for_column(&r, 1);
        let pab = pa.product(&pb);
        assert!(pa.refines_to(&pab), "a -> b");
        assert!(!pb.refines_to(&pab), "b -> a must fail");
        // Cross-check with the direct scan.
        assert!(pa.constant_on(&r, 1));
        assert!(!pb.constant_on(&r, 0));
    }

    #[test]
    fn constant_column_refines_from_empty_set() {
        let r = rel(&[("k", &[5, 5, 5])]);
        let unit = StrippedPartition::unit(3);
        let pk = StrippedPartition::for_column(&r, 0);
        assert!(unit.refines_to(&unit.product(&pk)));
        assert!(unit.constant_on(&r, 0));
    }
}
