//! FastFDs (Wyss, Giannella, Robertson 2001) — the FD discoverer the paper
//! actually quotes for its `|Fd|` column (Table 6).
//!
//! Where TANE walks the attribute-set lattice, FastFDs works from
//! **difference sets**: for every tuple pair, the set of attributes on
//! which the pair *disagrees*. A minimal FD `X → A` corresponds exactly to
//! a minimal **cover** of `D_A` — the family of difference sets containing
//! `A`, each with `A` removed — because `X` determines `A` iff every pair
//! that disagrees on `A` also disagrees somewhere in `X`.
//!
//! The implementation follows the original structure:
//!
//! 1. compute difference sets from tuple pairs that share at least one
//!    stripped-partition class (pairs with empty agree sets can be skipped
//!    for no LHS candidate... they still produce full difference sets,
//!    which every non-empty `X` covers — handled implicitly);
//! 2. per RHS attribute `A`, minimize `D_A` (drop supersets);
//! 3. enumerate minimal covers depth-first, ordering attributes by how
//!    many remaining difference sets they hit.
//!
//! Pair enumeration is `O(m²·n)`, which is FastFDs' documented weakness on
//! tall tables; TANE ([`crate::fd`]) remains the scalable baseline. The
//! two must produce identical minimal FD sets — the test-suite and
//! `tests/cross_algorithm.rs` verify it.

use ocdd_relation::{ColumnId, Relation};
use std::time::{Duration, Instant};

use crate::fd::Fd;

/// Attribute-set bitmask (bit `i` = column `i`).
type Mask = u128;

#[inline]
fn bit(col: ColumnId) -> Mask {
    1u128 << col
}

fn members(set: Mask) -> impl Iterator<Item = ColumnId> {
    (0..128usize).filter(move |&i| set & (1u128 << i) != 0)
}

/// Configuration for a FastFDs run.
#[derive(Debug, Clone, Default)]
pub struct FastFdsConfig {
    /// Wall-clock budget; exceeding it returns partial results.
    pub time_budget: Option<Duration>,
}

/// Output of a FastFDs run.
#[derive(Debug, Clone)]
pub struct FastFdsResult {
    /// Minimal FDs, in `(lhs size, lhs, rhs)` order.
    pub fds: Vec<Fd>,
    /// Distinct minimized difference sets found.
    pub difference_sets: usize,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// False when the budget stopped the run early.
    pub complete: bool,
}

/// Compute the distinct difference sets of `rel` (excluding the empty set:
/// duplicate tuple pairs carry no information).
fn difference_sets(rel: &Relation, deadline: Option<Instant>, complete: &mut bool) -> Vec<Mask> {
    let m = rel.num_rows();
    let n = rel.num_columns();
    let mut seen = std::collections::HashSet::new();
    for p in 0..m {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            *complete = false;
            break;
        }
        for q in (p + 1)..m {
            let mut diff: Mask = 0;
            for c in 0..n {
                if rel.code(p, c) != rel.code(q, c) {
                    diff |= bit(c);
                }
            }
            if diff != 0 {
                seen.insert(diff);
            }
        }
    }
    seen.into_iter().collect()
}

/// Keep only the minimal sets of a family (drop supersets). Sorting by
/// cardinality first means each survivor only needs subset checks against
/// earlier (smaller or equal) survivors.
fn minimize(mut family: Vec<Mask>, deadline: Option<Instant>, complete: &mut bool) -> Vec<Mask> {
    family.sort_unstable();
    family.dedup();
    family.sort_by_key(|s| s.count_ones());
    let mut out: Vec<Mask> = Vec::new();
    for (i, s) in family.iter().enumerate() {
        if i.is_multiple_of(1024) && deadline.is_some_and(|d| Instant::now() >= d) {
            *complete = false;
            break;
        }
        if !out.iter().any(|&kept| kept & s == kept) {
            out.push(*s);
        }
    }
    out
}

/// Depth-first enumeration of the minimal covers of `sets` — the core of
/// FastFDs. Completeness comes from the branching rule: every cover must
/// hit the first still-uncovered difference set, so it suffices to branch
/// on that set's members. Leaves are verified minimal (removing any chosen
/// attribute must break the cover), and duplicates from different
/// branching orders are deduplicated at the end.
fn minimal_covers(sets: &[Mask], deadline: Option<Instant>, complete: &mut bool) -> Vec<Mask> {
    let mut out = Vec::new();

    fn is_cover(cand: Mask, sets: &[Mask]) -> bool {
        sets.iter().all(|&s| s & cand != 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        current: Mask,
        sets: &[Mask],
        out: &mut Vec<Mask>,
        deadline: Option<Instant>,
        complete: &mut bool,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        if (*nodes).is_multiple_of(4096) && deadline.is_some_and(|d| Instant::now() >= d) {
            *complete = false;
        }
        if !*complete {
            return;
        }
        // First uncovered difference set, if any.
        match sets.iter().find(|&&s| s & current == 0) {
            None => {
                // A cover; keep it only if minimal.
                let minimal = members(current).all(|a| !is_cover(current & !bit(a), sets));
                if minimal {
                    out.push(current);
                }
            }
            Some(&uncovered) => {
                for a in members(uncovered) {
                    rec(current | bit(a), sets, out, deadline, complete, nodes);
                }
            }
        }
    }
    let mut nodes = 0u64;
    rec(0, sets, &mut out, deadline, complete, &mut nodes);
    out.sort_unstable();
    out.dedup();
    out
}

/// Run FastFDs over `rel`, returning all minimal FDs.
pub fn fastfds(rel: &Relation, config: &FastFdsConfig) -> FastFdsResult {
    let start = Instant::now();
    let n = rel.num_columns();
    assert!(n <= 128, "FastFDs baseline supports up to 128 columns");
    let deadline = config.time_budget.map(|d| start + d);
    let mut complete = true;

    let diffs = difference_sets(rel, deadline, &mut complete);
    let mut fds: Vec<Fd> = Vec::new();

    for a in 0..n {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            complete = false;
            break;
        }
        // D_A: difference sets containing A, with A removed.
        let d_a: Vec<Mask> = diffs
            .iter()
            .filter(|&&d| d & bit(a) != 0)
            .map(|&d| d & !bit(a))
            .collect();
        if d_a.is_empty() {
            // No pair ever disagrees on A: A is constant, ∅ → A.
            fds.push(Fd {
                lhs: Vec::new(),
                rhs: a,
            });
            continue;
        }
        if d_a.contains(&0) {
            // Some pair disagrees *only* on A: nothing determines A.
            continue;
        }
        let minimized = minimize(d_a, deadline, &mut complete);
        for cover in minimal_covers(&minimized, deadline, &mut complete) {
            fds.push(Fd {
                lhs: members(cover).collect(),
                rhs: a,
            });
        }
        if !complete {
            break;
        }
    }

    fds.sort_by(|a, b| (a.lhs.len(), &a.lhs, a.rhs).cmp(&(b.lhs.len(), &b.lhs, b.rhs)));
    fds.dedup();
    FastFdsResult {
        difference_sets: diffs.len(),
        fds,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn minimize_drops_supersets() {
        let mut complete = true;
        let fam = vec![0b111, 0b011, 0b110, 0b010];
        assert_eq!(minimize(fam, None, &mut complete), vec![0b010]);
        let fam = vec![0b101, 0b011];
        let min = minimize(fam, None, &mut complete);
        assert_eq!(min.len(), 2);
        assert!(complete);
    }

    #[test]
    fn covers_of_simple_family() {
        // Sets {0,1} and {1,2}: minimal covers are {1} and {0,2}.
        let mut complete = true;
        let covers = minimal_covers(&[0b011, 0b110], None, &mut complete);
        assert!(covers.contains(&0b010));
        assert!(covers.contains(&0b101));
        assert_eq!(covers.len(), 2);
    }

    #[test]
    fn finds_key_and_constant() {
        let r = rel(&[("id", &[1, 2, 3]), ("x", &[5, 5, 6]), ("k", &[9, 9, 9])]);
        let result = fastfds(&r, &FastFdsConfig::default());
        assert!(result.fds.contains(&Fd {
            lhs: vec![0],
            rhs: 1
        }));
        assert!(result.fds.contains(&Fd {
            lhs: vec![],
            rhs: 2
        }));
        assert!(result.complete);
    }

    #[test]
    fn nothing_determines_a_lonely_disagreement() {
        // Rows agree everywhere except column b: no FD with rhs b.
        let r = rel(&[("a", &[1, 1]), ("b", &[5, 6])]);
        let result = fastfds(&r, &FastFdsConfig::default());
        assert!(!result.fds.iter().any(|fd| fd.rhs == 1));
        // a is constant here, so the minimal FD for it is ∅ -> a.
        assert!(result.fds.contains(&Fd {
            lhs: vec![],
            rhs: 0
        }));
        // A non-constant variant: a = [1,1,2], b = [5,6,7] — b is a key and
        // nothing smaller determines a.
        let r = rel(&[("a", &[1, 1, 2]), ("b", &[5, 6, 7])]);
        let result = fastfds(&r, &FastFdsConfig::default());
        assert!(result.fds.contains(&Fd {
            lhs: vec![1],
            rhs: 0
        }));
    }

    #[test]
    fn matches_tane_on_random_tables() {
        use crate::fd::{tane, TaneConfig};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Relation::from_columns(
                (0..5)
                    .map(|c| {
                        (
                            format!("c{c}"),
                            (0..16)
                                .map(|_| Value::Int(rng.random_range(0..3)))
                                .collect(),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let ff = fastfds(&r, &FastFdsConfig::default());
            let tn = tane(&r, &TaneConfig::default());
            assert_eq!(ff.fds, tn.fds, "seed {seed}");
        }
    }

    #[test]
    fn matches_tane_on_paper_tables() {
        use crate::fd::{tane, TaneConfig};
        let numbers = ocdd_datasets::paper::numbers_table();
        assert_eq!(
            fastfds(&numbers, &FastFdsConfig::default()).fds,
            tane(&numbers, &TaneConfig::default()).fds
        );
        let tax = ocdd_datasets::paper::tax_table();
        assert_eq!(
            fastfds(&tax, &FastFdsConfig::default()).fds,
            tane(&tax, &TaneConfig::default()).fds
        );
    }

    #[test]
    fn budget_truncates() {
        use std::time::Duration;
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6, 7, 8]),
            ("b", &[1, 1, 2, 2, 3, 3, 4, 4]),
        ]);
        let result = fastfds(
            &r,
            &FastFdsConfig {
                time_budget: Some(Duration::ZERO),
            },
        );
        assert!(!result.complete);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::from_columns(vec![]).unwrap();
        let result = fastfds(&r, &FastFdsConfig::default());
        assert!(result.fds.is_empty());
        assert!(result.complete);
    }
}
