//! TANE-style minimal functional dependency discovery (Huhtala et al.).
//!
//! Provides the `|Fd|` column of Table 6. The paper quotes FastFDs for this
//! number; TANE computes the same complete set of minimal FDs, so the
//! counts are interchangeable (DESIGN.md §4).
//!
//! The algorithm walks the attribute-set lattice level by level, carrying a
//! stripped partition and a candidate-RHS set `C+(X)` per node, with the
//! standard TANE pruning rules (RHS pruning, empty-`C+` deletion, and the
//! key rule). Attribute sets are `u128` bitmasks, so relations of up to 128
//! columns are supported — enough for every dataset in the paper.

use crate::partitions::StrippedPartition;
use ocdd_relation::{ColumnId, Relation};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Attribute set as a bitmask (bit `i` = column `i`).
pub type AttrSet = u128;

/// Iterate the members of an attribute set.
fn members(set: AttrSet) -> impl Iterator<Item = ColumnId> {
    (0..128usize).filter(move |&i| set & (1u128 << i) != 0)
}

#[inline]
fn bit(col: ColumnId) -> AttrSet {
    1u128 << col
}

/// A minimal functional dependency `lhs → rhs` over attribute sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant attribute set, in ascending column order.
    pub lhs: Vec<ColumnId>,
    /// Determined attribute.
    pub rhs: ColumnId,
}

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}} -> {}", self.rhs)
    }
}

/// Configuration for a TANE run.
#[derive(Debug, Clone, Default)]
pub struct TaneConfig {
    /// Stop after this lattice level (max LHS size + 1). `None` = full.
    pub max_level: Option<usize>,
    /// Wall-clock budget; exceeding it returns partial results.
    pub time_budget: Option<Duration>,
}

/// Output of a TANE run.
#[derive(Debug, Clone)]
pub struct TaneResult {
    /// Minimal FDs found, in discovery (level) order.
    pub fds: Vec<Fd>,
    /// Number of lattice nodes visited.
    pub nodes_visited: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// False when a budget stopped the run early.
    pub complete: bool,
}

struct Node {
    partition: StrippedPartition,
    c_plus: AttrSet,
}

/// Run TANE over `rel`, returning all minimal FDs.
pub fn tane(rel: &Relation, config: &TaneConfig) -> TaneResult {
    let start = Instant::now();
    let n = rel.num_columns();
    assert!(n <= 128, "TANE baseline supports up to 128 columns");
    let r_mask: AttrSet = if n == 0 { 0 } else { (!0u128) >> (128 - n) };

    let mut fds: Vec<Fd> = Vec::new();
    let mut nodes_visited = 0u64;
    let mut complete = true;

    // Minimal-FD index by RHS, used to evaluate C+ membership by its
    // definition when the key rule probes a lattice node that was already
    // pruned: `X → B` holds iff some found minimal FD lhs ⊆ X with rhs B.
    // (All minimal FDs with smaller LHS are known by the time a level's
    // key rule runs, so the test is exact.)
    let mut fd_lhs_by_rhs: Vec<Vec<AttrSet>> = vec![Vec::new(); n];
    let holds = |fd_idx: &[Vec<AttrSet>], lhs: AttrSet, rhs: ColumnId| {
        // Subset test (l ⊆ lhs), not membership — keep the explicit form.
        #[allow(clippy::manual_contains)]
        fd_idx[rhs].iter().any(|&l| l & lhs == l)
    };
    // Definitional C+ membership: A ∈ C+(Y) iff for every B ∈ Y the FD
    // Y \ {A,B} → B does not hold.
    let in_c_plus = |fd_idx: &[Vec<AttrSet>], y: AttrSet, a: ColumnId| {
        members(y).all(|b| !holds(fd_idx, y & !bit(a) & !bit(b), b))
    };

    let deadline = config.time_budget.map(|d| start + d);
    let over_budget = |complete: &mut bool| -> bool {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            *complete = false;
            true
        } else {
            false
        }
    };

    // Level 0: the empty set.
    let unit = StrippedPartition::unit(rel.num_rows());
    let mut prev: HashMap<AttrSet, Node> = HashMap::new();
    prev.insert(
        0,
        Node {
            partition: unit,
            c_plus: r_mask,
        },
    );

    // Level 1 nodes.
    let mut curr: HashMap<AttrSet, Node> = (0..n)
        .map(|a| {
            (
                bit(a),
                Node {
                    partition: StrippedPartition::for_column(rel, a),
                    c_plus: r_mask,
                },
            )
        })
        .collect();

    let mut level = 1usize;
    while !curr.is_empty() {
        if config.max_level.is_some_and(|max| level > max) {
            complete = false;
            break;
        }
        if over_budget(&mut complete) {
            break;
        }

        // COMPUTE_DEPENDENCIES.
        let keys: Vec<AttrSet> = curr.keys().copied().collect();
        for &x in &keys {
            nodes_visited += 1;
            // Budget check every 256 nodes: large levels must not overshoot
            // the deadline by a whole level's worth of work.
            if nodes_visited.is_multiple_of(256) && over_budget(&mut complete) {
                break;
            }
            let c_plus_x = curr[&x].c_plus;
            for a in members(x & c_plus_x) {
                let x_minus_a = x & !bit(a);
                let valid = {
                    let sub = prev.get(&x_minus_a);
                    let node = &curr[&x];
                    match sub {
                        Some(s) => s.partition.refines_to(&node.partition),
                        None => continue, // subset pruned => not minimal here
                    }
                };
                if valid {
                    fds.push(Fd {
                        lhs: members(x_minus_a).collect(),
                        rhs: a,
                    });
                    fd_lhs_by_rhs[a].push(x_minus_a);
                    let node = curr.get_mut(&x).expect("key exists");
                    node.c_plus &= !bit(a);
                    node.c_plus &= x; // remove R \ X
                }
            }
        }

        if !complete {
            break;
        }

        // PRUNE.
        let keys: Vec<AttrSet> = curr.keys().copied().collect();
        let mut deleted: Vec<AttrSet> = Vec::new();
        for (visited, &x) in keys.iter().enumerate() {
            // The key rule's definitional C+ fallback scans the FD index,
            // which can be large on FD-rich data — keep the budget honest.
            if visited % 256 == 0 && over_budget(&mut complete) {
                break;
            }
            let (is_empty_cplus, is_key) = {
                let node = &curr[&x];
                (node.c_plus == 0, node.partition.is_empty())
            };
            if is_empty_cplus {
                deleted.push(x);
                continue;
            }
            if is_key {
                let c_plus_x = curr[&x].c_plus;
                for a in members(c_plus_x & !x) {
                    // Key rule: A ∈ ⋂_{B∈X} C+(X ∪ {A} \ {B}), evaluated
                    // from the stored node when present, by definition when
                    // the node was pruned at an earlier level.
                    let in_all = members(x).all(|b| {
                        let probe = (x | bit(a)) & !bit(b);
                        match curr.get(&probe) {
                            Some(nd) => nd.c_plus & bit(a) != 0,
                            None => in_c_plus(&fd_lhs_by_rhs, probe, a),
                        }
                    });
                    if in_all {
                        fds.push(Fd {
                            lhs: members(x).collect(),
                            rhs: a,
                        });
                        fd_lhs_by_rhs[a].push(x);
                    }
                }
                deleted.push(x);
            }
        }
        for x in deleted {
            curr.remove(&x);
        }
        if !complete {
            break;
        }

        // GENERATE_NEXT_LEVEL: classic prefix-block join — group the level
        // by "set minus its largest attribute"; sets in the same block
        // share their smallest |X|-1 attributes and join pairwise.
        let mut blocks: HashMap<AttrSet, Vec<AttrSet>> = HashMap::new();
        for &x in curr.keys() {
            let highest = 127 - x.leading_zeros() as usize;
            blocks.entry(x & !bit(highest)).or_default().push(x);
        }
        let mut next: HashMap<AttrSet, Node> = HashMap::new();
        let mut joined = 0u64;
        'join: for block in blocks.values() {
            for (i, &y) in block.iter().enumerate() {
                for &z in &block[i + 1..] {
                    joined += 1;
                    if joined.is_multiple_of(256) && over_budget(&mut complete) {
                        break 'join;
                    }
                    let x = y | z;
                    if next.contains_key(&x) {
                        continue;
                    }
                    // All |X|-1-subsets must have survived pruning.
                    let all_present = members(x).all(|a| curr.contains_key(&(x & !bit(a))));
                    if !all_present {
                        continue;
                    }
                    let partition = curr[&y].partition.product(&curr[&z].partition);
                    let c_plus = members(x)
                        .map(|a| curr[&(x & !bit(a))].c_plus)
                        .fold(r_mask, |acc, c| acc & c);
                    if c_plus == 0 {
                        continue;
                    }
                    next.insert(x, Node { partition, c_plus });
                }
                if over_budget(&mut complete) {
                    break 'join;
                }
            }
        }

        prev = std::mem::take(&mut curr);
        curr = next;
        level += 1;
        if !complete {
            break;
        }
    }

    fds.sort_by(|a, b| (a.lhs.len(), &a.lhs, a.rhs).cmp(&(b.lhs.len(), &b.lhs, b.rhs)));
    fds.dedup();
    TaneResult {
        fds,
        nodes_visited,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn fd_set(result: &TaneResult) -> std::collections::HashSet<(Vec<usize>, usize)> {
        result
            .fds
            .iter()
            .map(|fd| (fd.lhs.clone(), fd.rhs))
            .collect()
    }

    #[test]
    fn key_determines_everything() {
        let r = rel(&[
            ("id", &[1, 2, 3, 4]),
            ("x", &[5, 5, 6, 6]),
            ("y", &[7, 8, 7, 8]),
        ]);
        let result = tane(&r, &TaneConfig::default());
        let fds = fd_set(&result);
        assert!(fds.contains(&(vec![0], 1)));
        assert!(fds.contains(&(vec![0], 2)));
        // x,y together form a key too.
        assert!(fds.contains(&(vec![1, 2], 0)));
    }

    #[test]
    fn constant_column_has_empty_lhs() {
        let r = rel(&[("a", &[1, 2, 3]), ("k", &[9, 9, 9])]);
        let result = tane(&r, &TaneConfig::default());
        assert!(fd_set(&result).contains(&(vec![], 1)));
        // And nothing non-minimal about k.
        assert!(!fd_set(&result).contains(&(vec![0], 1)));
    }

    #[test]
    fn no_fds_on_independent_binary_noise() {
        // Carefully chosen so no column determines another.
        let r = rel(&[
            ("a", &[0, 0, 1, 1, 0, 1]),
            ("b", &[0, 1, 0, 1, 1, 0]),
            ("c", &[1, 0, 0, 1, 0, 0]),
        ]);
        let result = tane(&r, &TaneConfig::default());
        for fd in &result.fds {
            // Any FD found must genuinely hold.
            let lhs_ok = |p: usize, q: usize| fd.lhs.iter().all(|&c| r.code(p, c) == r.code(q, c));
            for p in 0..6 {
                for q in 0..6 {
                    if lhs_ok(p, q) {
                        assert_eq!(r.code(p, fd.rhs), r.code(q, fd.rhs), "{fd} does not hold");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_tables() {
        use ocdd_core::brute::brute_force_minimal_fds;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cols = 4;
            let rows = 14;
            let r = Relation::from_columns(
                (0..cols)
                    .map(|c| {
                        (
                            format!("c{c}"),
                            (0..rows)
                                .map(|_| Value::Int(rng.random_range(0..3)))
                                .collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            let ours: std::collections::HashSet<_> = tane(&r, &TaneConfig::default())
                .fds
                .into_iter()
                .map(|fd| (fd.lhs, fd.rhs))
                .collect();
            let brute: std::collections::HashSet<_> =
                brute_force_minimal_fds(&r, cols).into_iter().collect();
            assert_eq!(ours, brute, "seed {seed}");
        }
    }

    #[test]
    fn max_level_truncates() {
        let r = rel(&[
            ("a", &[0, 0, 1, 1]),
            ("b", &[0, 1, 0, 1]),
            ("c", &[0, 1, 1, 0]),
        ]);
        let result = tane(
            &r,
            &TaneConfig {
                max_level: Some(1),
                ..Default::default()
            },
        );
        assert!(!result.complete);
        assert!(result.fds.iter().all(|fd| fd.lhs.is_empty()));
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let r = Relation::from_columns(vec![]).unwrap();
        let result = tane(&r, &TaneConfig::default());
        assert!(result.fds.is_empty());
        assert!(result.complete);
    }

    #[test]
    fn display_formats_fd() {
        let fd = Fd {
            lhs: vec![0, 2],
            rhs: 1,
        };
        assert_eq!(fd.to_string(), "{0,2} -> 1");
    }
}
