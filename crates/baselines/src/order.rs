//! ORDER (Langer & Naumann, 2016): levelwise OD discovery over candidates
//! with **disjoint, duplicate-free** attribute lists.
//!
//! ORDER traverses directed OD candidates `X → Y` breadth-first, steering
//! by the violation kind the check reports:
//!
//! * **Valid** — emit the OD. LHS extensions `XA → Y` are implied (a longer
//!   LHS only strengthens the premise) and are pruned; RHS extensions
//!   `X → YB` are new candidates.
//! * **Split** (FD component violated) — appending to the RHS can never fix
//!   a split, so only LHS extensions `XA → Y` are generated.
//! * **Swap** (order compatibility violated) — a strict swap survives any
//!   extension on either side; the subtree is pruned entirely.
//!
//! Because left- and right-hand sides must stay disjoint, ORDER is
//! *incomplete*: dependencies with repeated attributes, such as the
//! `AB → B` (equivalently `A ~ B`) hidden in the YES dataset, are never
//! found (§5.2.1). The test-suite pins this down.

use ocdd_core::check::{check_od, CheckOutcome};
use ocdd_core::deps::{AttrList, Od};
use ocdd_relation::{ColumnId, Relation};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration for an ORDER run.
#[derive(Debug, Clone, Default)]
pub struct OrderConfig {
    /// Stop after this level (combined list length). `None` = full lattice.
    pub max_level: Option<usize>,
    /// Abort with partial results after this many candidate checks.
    pub max_checks: Option<u64>,
    /// Wall-clock budget (the paper's 5-hour threshold).
    pub time_budget: Option<Duration>,
}

/// Output of an ORDER run.
#[derive(Debug, Clone)]
pub struct OrderResult {
    /// Minimal ODs with disjoint sides, in level order.
    pub ods: Vec<Od>,
    /// Candidate checks performed.
    pub checks: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// False when a budget stopped the run early.
    pub complete: bool,
}

/// Run ORDER over `rel`.
pub fn order_discover(rel: &Relation, config: &OrderConfig) -> OrderResult {
    let start = Instant::now();
    let n = rel.num_columns();
    let deadline = config.time_budget.map(|d| start + d);
    let max_checks = config.max_checks.unwrap_or(u64::MAX);

    let mut ods: Vec<Od> = Vec::new();
    let mut checks = 0u64;
    let mut complete = true;

    // Level 2 seeds: all ordered pairs (directions matter for ODs).
    let mut level: Vec<(AttrList, AttrList)> = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                level.push((AttrList::single(a), AttrList::single(b)));
            }
        }
    }

    let mut level_no = 2usize;
    'outer: while !level.is_empty() {
        if config.max_level.is_some_and(|max| level_no > max) {
            complete = false;
            break;
        }
        let mut next: Vec<(AttrList, AttrList)> = Vec::new();
        for (x, y) in &level {
            if checks >= max_checks || deadline.is_some_and(|d| Instant::now() >= d) {
                complete = false;
                break 'outer;
            }
            checks += 1;
            let unused = || {
                (0..n)
                    .filter(|&a| !x.contains(a) && !y.contains(a))
                    .collect::<Vec<ColumnId>>()
            };
            match check_od(rel, x, y) {
                CheckOutcome::Valid => {
                    ods.push(Od::new(x.clone(), y.clone()));
                    for b in unused() {
                        next.push((x.clone(), y.with_appended(b)));
                    }
                }
                CheckOutcome::Split { .. } => {
                    for a in unused() {
                        next.push((x.with_appended(a), y.clone()));
                    }
                }
                CheckOutcome::Swap { .. } => {} // dead subtree
            }
        }
        // Dedup: a candidate can be generated along several paths.
        let mut seen: HashSet<(AttrList, AttrList)> = HashSet::with_capacity(next.len());
        next.retain(|c| seen.insert(c.clone()));
        level = next;
        level_no += 1;
    }

    ods.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ods.dedup();
    OrderResult {
        ods,
        checks,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn finds_single_column_ods() {
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 1, 2, 2])]);
        let result = order_discover(&r, &OrderConfig::default());
        assert!(result.complete);
        let texts: Vec<String> = result.ods.iter().map(|o| o.to_string()).collect();
        assert!(texts.contains(&"[0] -> [1]".to_string()));
        assert!(!texts.contains(&"[1] -> [0]".to_string()));
    }

    #[test]
    fn finds_composite_lhs_od() {
        // Neither a nor b alone orders c, but [a,b] does.
        let r = rel(&[
            ("a", &[1, 1, 2, 2]),
            ("b", &[1, 2, 1, 2]),
            ("c", &[1, 2, 3, 4]),
        ]);
        let result = order_discover(&r, &OrderConfig::default());
        let texts: Vec<String> = result.ods.iter().map(|o| o.to_string()).collect();
        assert!(
            texts.contains(&"[0,1] -> [2]".to_string()),
            "found: {texts:?}"
        );
    }

    #[test]
    fn incomplete_on_yes_dataset() {
        // The headline incompleteness: ORDER finds nothing on YES.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let result = order_discover(&r, &OrderConfig::default());
        assert!(result.complete);
        assert!(
            result.ods.is_empty(),
            "ORDER must miss AB <-> BA: {:?}",
            result.ods
        );
    }

    #[test]
    fn nothing_on_no_dataset() {
        let r = rel(&[("a", &[1, 2, 3, 3, 4]), ("b", &[4, 5, 6, 7, 1])]);
        let result = order_discover(&r, &OrderConfig::default());
        assert!(result.ods.is_empty());
    }

    #[test]
    fn swap_prunes_subtree() {
        // Pure swaps everywhere: exactly the seed checks, nothing deeper.
        let r = rel(&[("a", &[1, 2]), ("b", &[2, 1])]);
        let result = order_discover(&r, &OrderConfig::default());
        assert_eq!(result.checks, 2);
        assert!(result.ods.is_empty());
    }

    #[test]
    fn all_emitted_ods_hold_and_have_disjoint_sides() {
        use ocdd_core::check::check_od_pairwise;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let r = Relation::from_columns(
            (0..4)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..20)
                            .map(|_| Value::Int(rng.random_range(0..3)))
                            .collect(),
                    )
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let result = order_discover(&r, &OrderConfig::default());
        for od in &result.ods {
            assert!(od.lhs.is_disjoint(&od.rhs), "{od}");
            assert!(od.lhs.is_duplicate_free() && od.rhs.is_duplicate_free());
            assert!(
                check_od_pairwise(&r, &od.lhs, &od.rhs),
                "{od} does not hold"
            );
        }
    }

    #[test]
    fn check_budget_stops_early() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2]),
            ("b", &[1, 2, 1, 2]),
            ("c", &[1, 2, 3, 4]),
        ]);
        let result = order_discover(
            &r,
            &OrderConfig {
                max_checks: Some(3),
                ..Default::default()
            },
        );
        assert!(!result.complete);
        assert!(result.checks <= 3);
    }

    #[test]
    fn constant_column_is_ordered_by_everything() {
        let r = rel(&[("a", &[1, 2, 3]), ("k", &[7, 7, 7])]);
        let result = order_discover(&r, &OrderConfig::default());
        let texts: Vec<String> = result.ods.iter().map(|o| o.to_string()).collect();
        assert!(texts.contains(&"[0] -> [1]".to_string()));
    }
}
