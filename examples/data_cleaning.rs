//! Data-quality workflow (§1's "order dependencies can be used as
//! requirements or constraints"): treat a near-holding OD as an intended
//! business rule and surface the violating rows for repair.
//!
//! ```text
//! cargo run --example data_cleaning
//! ```
//!
//! The pipeline: discover ε-approximate dependencies, then for each one
//! compute the exact *repair set* — the rows whose removal (or correction)
//! makes the rule hold — via `ocdd_core::approximate::removal_witnesses`.

use ocddiscover::core::approximate::{discover_approximate, od_error, removal_witnesses};
use ocddiscover::relation::pretty::render_table;
use ocddiscover::{AttrList, DiscoveryConfig, Relation, Value};

fn main() {
    // An orders table where unit price scales with quantity bracket —
    // except for two fat-fingered rows.
    let quantity: Vec<i64> = vec![1, 2, 5, 8, 10, 12, 15, 20, 3, 18];
    let bracket: Vec<i64> = vec![1, 1, 1, 2, 2, 2, 3, 3, 1, 3];
    // Bulk pricing: higher brackets pay a higher per-unit logistics fee.
    let mut unit_price: Vec<i64> = bracket.iter().map(|b| 50 + b * 10).collect();
    // Corruptions: row 4 got bracket 3's fee; row 8 a stale price.
    unit_price[4] = 80;
    unit_price[8] = 45;

    let rel = Relation::from_columns(vec![
        (
            "quantity".into(),
            quantity.into_iter().map(Value::Int).collect(),
        ),
        (
            "bracket".into(),
            bracket.into_iter().map(Value::Int).collect(),
        ),
        (
            "unit_price".into(),
            unit_price.into_iter().map(Value::Int).collect(),
        ),
    ])
    .unwrap();

    println!("{}", render_table(&rel, 12));

    // The intended rule: the bracket determines and orders the unit price.
    let bracket_col = AttrList::single(rel.column_id("bracket").unwrap());
    let price_col = AttrList::single(rel.column_id("unit_price").unwrap());
    let err = od_error(&rel, &bracket_col, &price_col);
    println!(
        "bracket -> unit_price: swap error {:.2}, split error {:.2}",
        err.swap_error(),
        err.split_error()
    );

    // Discover everything that *almost* holds at 25% tolerance.
    let approx = discover_approximate(&rel, &DiscoveryConfig::default(), 0.25);
    println!("\nApproximate dependencies at ε = 0.25:");
    for a in &approx.ocds {
        println!("  {} (error {:.2})", a.ocd.display(&rel), a.error);
    }

    // Repair set for the price rule.
    let witnesses = removal_witnesses(&rel, &bracket_col, &price_col);
    println!("\nRows violating bracket -> unit_price (candidates for repair):");
    for &row in &witnesses {
        let r = row as usize;
        println!(
            "  row {row}: quantity={}, bracket={}, unit_price={}",
            rel.value(r, 0),
            rel.value(r, 1),
            rel.value(r, 2)
        );
    }

    // Verify the repair: dropping the witnesses makes the rule exact.
    let keep: Vec<usize> = (0..rel.num_rows())
        .filter(|r| !witnesses.contains(&(*r as u32)))
        .collect();
    let repaired = Relation::from_columns(
        (0..rel.num_columns())
            .map(|c| {
                (
                    rel.meta(c).name.clone(),
                    keep.iter().map(|&r| rel.value(r, c).clone()).collect(),
                )
            })
            .collect(),
    )
    .unwrap();
    let fixed = od_error(&repaired, &bracket_col, &price_col);
    assert!(fixed.is_exact());
    println!(
        "\nAfter removing {} rows the rule holds exactly ({} rows remain).",
        witnesses.len(),
        repaired.num_rows()
    );
}
