//! The paper's §1 motivating application: simplifying SQL `ORDER BY`
//! clauses with discovered order dependencies.
//!
//! Given `ORDER BY income, bracket, tax` on Table 1, the dependencies
//! `income → bracket` and `income ↔ tax` make the trailing sort keys
//! redundant: sorting by `income` alone produces the same row order.
//!
//! ```text
//! cargo run --example query_optimizer
//! ```
//!
//! Two simplifiers from `ocdd_core::rewrite` are demonstrated: the
//! instance-backed one (strongest, valid for this data) and the
//! dependency-backed one (what an optimizer with a dependency catalogue
//! would apply to any conforming instance).

use ocddiscover::core::rewrite::{simplify_with_data, simplify_with_result, DropReason};
use ocddiscover::datasets::paper::tax_table;
use ocddiscover::{discover, DiscoveryConfig, Relation};

/// Resolve names to ids and run both simplifiers, printing justifications.
fn simplify_order_by(rel: &Relation, keys: &[&str]) -> (Vec<String>, Vec<String>) {
    let ids: Vec<usize> = keys
        .iter()
        .map(|k| rel.column_id(k).expect("sort key is a column"))
        .collect();
    let simplified = simplify_with_data(rel, &ids);
    let kept_names: Vec<String> = simplified
        .kept
        .iter()
        .map(|&c| rel.meta(c).name.clone())
        .collect();
    let notes = simplified
        .dropped
        .iter()
        .map(|(col, reason)| {
            let name = &rel.meta(*col).name;
            match reason {
                DropReason::Constant => format!("dropped {name}: constant column"),
                DropReason::OrderedByPrefix { prefix } => {
                    let p: Vec<&str> = prefix.iter().map(|&c| rel.meta(c).name.as_str()).collect();
                    format!("dropped {name}: ordered by ({}) already", p.join(", "))
                }
                DropReason::EquivalentTo { kept } => {
                    format!("dropped {name}: equivalent to {}", rel.meta(*kept).name)
                }
                DropReason::ByDiscoveredOd { lhs } => {
                    let p: Vec<&str> = lhs.iter().map(|&c| rel.meta(c).name.as_str()).collect();
                    format!(
                        "dropped {name}: discovered OD [{}] -> [{name}]",
                        p.join(",")
                    )
                }
            }
        })
        .collect();
    (kept_names, notes)
}

fn main() {
    let rel = tax_table();

    // Show the dependencies the optimizer can rely on.
    let result = discover(&rel, &DiscoveryConfig::default());
    println!("Discovered dependencies on TaxInfo:");
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class.iter().map(|&c| rel.meta(c).name.as_str()).collect();
        println!("  {}", names.join(" <-> "));
    }
    for od in &result.ods {
        println!("  {}", od.display(&rel));
    }
    for ocd in &result.ocds {
        println!("  {}", ocd.display(&rel));
    }

    let query = "SELECT income, bracket, tax FROM TaxInfo ORDER BY income, bracket, tax";
    println!("\nOriginal query:\n  {query}");

    let (kept, notes) = simplify_order_by(&rel, &["income", "bracket", "tax"]);
    for note in &notes {
        println!("  -- {note}");
    }
    println!(
        "\nRewritten query:\n  SELECT income, bracket, tax FROM TaxInfo ORDER BY {}",
        kept.join(", ")
    );

    // A second clause where nothing can be dropped.
    let (kept2, notes2) = simplify_order_by(&rel, &["savings", "name"]);
    println!("\nORDER BY savings, name -> ORDER BY {}", kept2.join(", "));
    for note in notes2 {
        println!("  -- {note}");
    }

    // The dependency-backed simplifier reaches the same rewrite using only
    // the discovered catalogue (sound for any conforming instance).
    let ids = [
        rel.column_id("income").unwrap(),
        rel.column_id("bracket").unwrap(),
        rel.column_id("tax").unwrap(),
    ];
    let catalogue_based = simplify_with_result(&result, &ids);
    println!(
        "\nCatalogue-based rewrite: {}",
        catalogue_based.display(&rel)
    );

    // Sanity: the rewrite preserves the row order.
    use ocddiscover::relation::sort_index_by;
    let full = sort_index_by(
        &rel,
        &[
            rel.column_id("income").unwrap(),
            rel.column_id("bracket").unwrap(),
            rel.column_id("tax").unwrap(),
        ],
    );
    let simplified = sort_index_by(&rel, &[rel.column_id("income").unwrap()]);
    assert_eq!(full, simplified, "rewrite must preserve the sort order");
    println!("\nVerified: both clauses produce the same row order.");
}
