//! Quickstart: discover order dependencies in the paper's Table 1 (tax
//! data) and print everything the algorithm reports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ocddiscover::core::expand::{expanded_od_count, expanded_ods};
use ocddiscover::datasets::paper::tax_table;
use ocddiscover::{discover, DiscoveryConfig};

fn main() {
    let rel = tax_table();
    println!(
        "Relation: {} rows × {} columns",
        rel.num_rows(),
        rel.num_columns()
    );
    for meta in rel.schema() {
        println!(
            "  column {:<8} type {:?}, {} distinct{}",
            meta.name,
            meta.data_type,
            meta.distinct,
            if meta.is_constant() {
                " (constant)"
            } else {
                ""
            }
        );
    }

    let result = discover(&rel, &DiscoveryConfig::default());

    println!("\nColumn reduction:");
    for &c in &result.constants {
        println!("  constant column: {}", rel.meta(c).name);
    }
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class.iter().map(|&c| rel.meta(c).name.as_str()).collect();
        println!("  order-equivalent columns: {}", names.join(" <-> "));
    }

    println!("\nOrder compatibility dependencies (X ~ Y):");
    for ocd in &result.ocds {
        println!("  {}", ocd.display(&rel));
    }

    println!("\nOrder dependencies (X -> Y):");
    for od in &result.ods {
        println!("  {}", od.display(&rel));
    }

    println!(
        "\nExpanded OD count (with equivalence substitution): {}",
        expanded_od_count(&result)
    );
    println!("First expanded ODs:");
    for od in expanded_ods(&result, 8) {
        println!("  {}", od.display(&rel));
    }

    println!(
        "\nStatistics: {} checks, {} candidates generated, {:?} elapsed, complete = {}",
        result.checks,
        result.candidates_generated,
        result.elapsed,
        result.complete()
    );
}
