//! Profile an arbitrary CSV file for order dependencies.
//!
//! ```text
//! cargo run --example profile_csv -- <file.csv> [--threads N] [--lex]
//!     [--top-k K] [--budget SECS] [--no-header] [--sep C]
//! ```
//!
//! * `--threads N` — run the paper's static-queue parallel mode.
//! * `--lex` — treat every column as a string (FASTOD's typing, §5.2.2).
//! * `--top-k K` — only profile the K most diverse columns (§5.4).
//! * `--budget SECS` — per-run wall-clock budget (partial results after).
//!
//! Without a file argument the example profiles a bundled demo CSV so it
//! stays runnable out of the box.

use ocddiscover::core::entropy::{discover_top_k, rank_columns};
use ocddiscover::relation::TypingMode;
use ocddiscover::{read_csv_str, CsvOptions, DiscoveryConfig, Relation};
use std::time::Duration;

const DEMO: &str = "\
employee,grade,salary,bonus,office
alice,1,1000,100,berlin
bob,1,1000,100,berlin
carol,2,1500,150,berlin
dave,2,1500,150,paris
erin,3,2500,250,paris
frank,4,4000,400,paris
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut config = DiscoveryConfig::default();
    let mut csv_opts = CsvOptions::default();
    let mut top_k: Option<usize> = None;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let n: usize = iter.next().expect("--threads N").parse().expect("number");
                config = DiscoveryConfig {
                    mode: ocddiscover::ParallelMode::StaticQueues(n),
                    ..config
                };
            }
            "--lex" => csv_opts.typing = TypingMode::ForceLexicographic,
            "--top-k" => top_k = Some(iter.next().expect("--top-k K").parse().expect("number")),
            "--budget" => {
                let secs: f64 = iter.next().expect("--budget SECS").parse().expect("number");
                config.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--no-header" => csv_opts.has_header = false,
            "--sep" => {
                csv_opts.separator = iter
                    .next()
                    .expect("--sep C")
                    .chars()
                    .next()
                    .expect("one char");
            }
            other => path = Some(other.to_owned()),
        }
    }

    let rel: Relation = match &path {
        Some(p) => {
            let text = std::fs::read_to_string(p).expect("readable CSV file");
            read_csv_str(&text, &csv_opts).expect("well-formed CSV")
        }
        None => {
            println!("(no file given — profiling the bundled demo table)\n");
            read_csv_str(DEMO, &csv_opts).expect("demo CSV parses")
        }
    };

    println!(
        "Loaded {} rows × {} columns",
        rel.num_rows(),
        rel.num_columns()
    );
    println!("\nColumns by decreasing entropy (interestingness, §5.4):");
    for r in rank_columns(&rel) {
        println!(
            "  {:<12} H = {:.3} nats, {} distinct",
            r.name, r.entropy, r.distinct
        );
    }

    let (selected, result) = match top_k {
        Some(k) => {
            let guided = discover_top_k(&rel, k, &config).expect("projection in range");
            (Some(guided.selected), guided.result)
        }
        None => (None, ocddiscover::discover(&rel, &config)),
    };

    // Column ids in the result refer to the projected relation when --top-k
    // is active.
    let display_rel = match &selected {
        Some(cols) => rel.project(cols).expect("projection in range"),
        None => rel.clone(),
    };

    println!("\n== Results ==");
    for &c in &result.constants {
        println!("constant: {}", display_rel.meta(c).name);
    }
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class
            .iter()
            .map(|&c| display_rel.meta(c).name.as_str())
            .collect();
        println!("equivalent: {}", names.join(" <-> "));
    }
    for ocd in &result.ocds {
        println!("ocd: {}", ocd.display(&display_rel));
    }
    for od in &result.ods {
        println!("od:  {}", od.display(&display_rel));
    }
    println!(
        "\n{} checks in {:?} ({}complete)",
        result.checks,
        result.elapsed,
        if result.complete() { "" } else { "in" }
    );
}
