//! Incremental discovery over a growing table — the paper's §7 future-work
//! scenario ("dynamic inputs, where additional rows … may be added at
//! runtime").
//!
//! Order dependencies are anti-monotone under row insertion: new rows can
//! break dependencies but never create them, so an append only needs to
//! re-validate what currently holds (plus resume the search below any OD
//! whose Theorem 3.9 pruning no longer applies).
//!
//! ```text
//! cargo run --example incremental
//! ```

use ocddiscover::core::incremental::IncrementalDiscovery;
use ocddiscover::{DiscoveryConfig, Relation, Value};

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

fn print_state(label: &str, inc: &IncrementalDiscovery) {
    let rel = inc.relation();
    let result = inc.result();
    println!("\n== {label} ({} rows) ==", rel.num_rows());
    for &c in &result.constants {
        println!("  constant: {}", rel.meta(c).name);
    }
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class.iter().map(|&c| rel.meta(c).name.as_str()).collect();
        println!("  equivalent: {}", names.join(" <-> "));
    }
    for ocd in &result.ocds {
        println!("  ocd: {}", ocd.display(rel));
    }
    for od in &result.ods {
        println!("  od:  {}", od.display(rel));
    }
}

fn main() {
    // A sensor feed: timestamp, a cumulative counter, and a status flag
    // that starts out constant.
    let initial = Relation::from_columns(vec![
        ("ts".into(), ints(&[100, 101, 102, 103])),
        ("counter".into(), ints(&[5, 9, 9, 14])),
        ("status".into(), ints(&[0, 0, 0, 0])),
    ])
    .unwrap();

    let mut inc = IncrementalDiscovery::new(&initial, DiscoveryConfig::default());
    print_state("initial discovery", &inc);

    // Batch 1: consistent rows — nothing changes.
    let delta = inc
        .append_rows(vec![ints(&[104, 14, 0]), ints(&[105, 20, 0])])
        .unwrap();
    println!("\nbatch 1 (consistent): delta empty = {}", delta.is_empty());
    print_state("after batch 1", &inc);

    // Batch 2: the counter resets — ts -> counter breaks.
    let delta = inc.append_rows(vec![ints(&[106, 0, 0])]).unwrap();
    println!("\nbatch 2 (counter reset):");
    for od in &delta.invalidated_ods {
        println!("  invalidated od:  {}", od.display(inc.relation()));
    }
    for ocd in &delta.invalidated_ocds {
        println!("  invalidated ocd: {}", ocd.display(inc.relation()));
    }
    print_state("after batch 2", &inc);

    // Batch 3: the status flag flips — a constant demotes, forcing a full
    // re-discovery over the enlarged attribute universe.
    let delta = inc.append_rows(vec![ints(&[107, 3, 1])]).unwrap();
    println!(
        "\nbatch 3 (status flips): demoted constants {:?}, full rerun = {}",
        delta.demoted_constants, delta.full_rerun
    );
    print_state("after batch 3", &inc);
}
