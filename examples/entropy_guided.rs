//! Entropy-guided discovery over a wide, quasi-constant-ridden table
//! (§5.4 of the paper).
//!
//! FLIGHT-like tables make the full candidate tree explode: quasi-constant
//! columns participate in a huge number of valid OCDs. The paper's
//! proposal is to rank columns by Shannon entropy and profile only the
//! most diverse ones. This example contrasts the two strategies.
//!
//! ```text
//! cargo run --release --example entropy_guided
//! ```

use ocddiscover::core::entropy::{discover_top_k, quasi_constant_columns, rank_columns};
use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::{discover, DiscoveryConfig};
use std::time::Duration;

fn main() {
    // A 40-column slice of the FLIGHT-like generator keeps the demo quick
    // while preserving the pathology (constants + quasi-constants).
    let wide = Dataset::Flight1k.generate(RowScale::Rows(500));
    let ranked = rank_columns(&wide);
    let cols: Vec<usize> = ranked.iter().map(|r| r.column).take(40).collect();
    let mut with_quasi = cols.clone();
    // Re-add the lowest-entropy non-constant columns to make the point.
    for q in quasi_constant_columns(&wide, 4) {
        if !with_quasi.contains(&q) {
            with_quasi.push(q);
        }
    }
    let rel = wide.project(&with_quasi).expect("columns in range");
    println!(
        "Profiling a {}×{} slice of FLIGHT_1K",
        rel.num_rows(),
        rel.num_columns()
    );

    let quasi = quasi_constant_columns(&rel, 4);
    println!(
        "{} quasi-constant columns (≤4 distinct values)",
        quasi.len()
    );

    // Strategy 1: full discovery under a small budget.
    let budget = Duration::from_secs(3);
    let full = discover(
        &rel,
        &DiscoveryConfig {
            time_budget: Some(budget),
            ..DiscoveryConfig::default()
        },
    );
    println!(
        "\nFull discovery with a {budget:?} budget: {} checks, complete = {} \
         ({} OCDs, {} ODs so far)",
        full.checks,
        full.complete(),
        full.ocd_count(),
        full.od_count()
    );

    // Strategy 2: entropy-guided top-k discovery.
    for k in [10usize, 20] {
        let guided =
            discover_top_k(&rel, k, &DiscoveryConfig::default()).expect("projection in range");
        println!(
            "Top-{k} most diverse columns: {} checks in {:?}, complete = {} \
             ({} OCDs, {} ODs)",
            guided.result.checks,
            guided.result.elapsed,
            guided.result.complete(),
            guided.result.ocd_count(),
            guided.result.od_count()
        );
    }

    println!(
        "\nTakeaway (Figure 7): diverse columns profile in milliseconds; the \
         quasi-constant tail is what blows the tree up."
    );
}
