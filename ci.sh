#!/usr/bin/env bash
# Repo gate: invariant lint, format, lints, docs, full test suite,
# criterion smoke run. Opt-in concurrency-audit lanes:
#   OCDD_CI_LOOM=1  — loom interleaving models (scheduler + epoch cache)
#   OCDD_CI_TSAN=1  — ThreadSanitizer pass (needs a nightly toolchain)
#   OCDD_CI_MIRI=1  — Miri pass over ocdd-core (needs the miri component)
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> ocdd-lint fixture suite (exact-diagnostic self-tests)"
# The linter's own tests run first: fixture files pinned to exact spans and
# witnesses, the masking/tokenizer property differential, and the binary
# e2e over throwaway mini-workspaces. A linter that drifted from its
# fixtures must not gate the workspace.
cargo test -q -p ocdd-lint

echo "==> ocdd-lint (workspace invariant rules)"
# Hard gate before clippy: panic-reachability over the call graph,
# lock-order acyclicity, determinism taint, the loop-aware dataflow rules
# (unprobed-loop, schema-parity, hot-loop-alloc — DESIGN.md §15), plus the
# line rules (see DESIGN.md §10–§11). The stable JSON findings document is
# uploaded to results/ for revision-to-revision diffing
# (scripts/lint_diff.sh), a SARIF twin for code-review annotation UIs, and
# the per-rule counts are gated against the checked-in baseline.
mkdir -p results
# --out writes atomically (tmp+fsync+rename) so a killed CI run never
# leaves a truncated findings document behind.
cargo run -q -p ocdd-lint -- --emit json --out results/lint_findings.json || true
cargo run -q -p ocdd-lint -- --emit sarif --out results/lint_findings.sarif || true
lint_rules="$(sed -n 's/^  "rules": {\(.*\)},$/\1/p' results/lint_findings.json)"
if [[ -z "$lint_rules" ]]; then
    echo "ocdd-lint: could not parse the per-rule counts in results/lint_findings.json"
    exit 1
fi
# The baseline is one "<rule> <count>" line per rule (LC_ALL=C sorted).
# Gate each rule against it: a rule above its baseline — or a rule the
# baseline has never heard of — fails the run.
lint_regressed=0
while read -r rule count; do
    baseline="$(LC_ALL=C awk -v r="$rule" '$1 == r { print $2 }' results/lint_baseline.txt)"
    if [[ -z "$baseline" ]]; then
        echo "ocdd-lint: rule \`$rule\` is missing from results/lint_baseline.txt"
        lint_regressed=1
    elif [[ "$count" -gt "$baseline" ]]; then
        echo "ocdd-lint: $rule has $count finding(s), baseline $baseline"
        lint_regressed=1
    fi
done < <(echo "$lint_rules" | tr ',' '\n' | sed -n 's/^ *"\([a-z-]*\)": \([0-9]*\)$/\1 \2/p')
if [[ "$lint_regressed" -ne 0 ]]; then
    cargo run -q -p ocdd-lint || true # re-run for the human-readable witnesses
    exit 1
fi
echo "ocdd-lint: per-rule counts within baseline"

echo "==> ocdd-lint --fix-allows (stale-annotation dry run)"
# Allows whose findings were since fixed must not accumulate: the dry run
# lists them; any hit fails the gate (run --fix-allows --apply to clean).
stale_out="$(cargo run -q -p ocdd-lint -- --fix-allows)"
echo "$stale_out"
echo "$stale_out" | grep -q "^ocdd-lint: 0 stale allow(s) found" || {
    echo "ocdd-lint: stale allows accumulate — run cargo run -q -p ocdd-lint -- --fix-allows --apply"
    exit 1
}

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features fault-injection"
cargo test -q --features fault-injection

echo "==> fault-injection stress iteration (RUST_BACKTRACE=1)"
RUST_BACKTRACE=1 cargo test -q --features fault-injection --test fault_injection

echo "==> work-stealing differential suite (workers 1 and 4 vs Sequential)"
# The determinism matrix and proptest differentials pin WorkStealing(1) and
# WorkStealing(4) — byte-identical results, budget truncation and fault
# quarantine included; any divergence fails the run.
cargo test -q --test parallel_determinism
cargo test -q --test property_based workstealing
cargo test -q --test property_based sample

echo "==> checkpoint/resume crash smoke (SIGKILL + ocdd --resume)"
# A real child process is SIGKILLed mid-search and resumed from its newest
# dump; the resumed JSON report must match an uninterrupted reference
# byte-for-byte once the wall-clock/checkpoint-counter keys are stripped.
# (The in-process kill-at-every-level sweeps live in parallel_determinism
# and the core suite; tests/crash_resume.rs is the cargo-test twin of this
# lane.)
cargo build -q --features fault-injection
OCDD_BIN=target/debug/ocdd
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$OCDD_BIN" dataset hepatitis --rows 150 >"$SMOKE_DIR/table.csv"
"$OCDD_BIN" profile "$SMOKE_DIR/table.csv" --json --out "$SMOKE_DIR/ref.json" >/dev/null
"$OCDD_BIN" profile "$SMOKE_DIR/table.csv" \
    --checkpoint-dir "$SMOKE_DIR/ckpt" --checkpoint-keep 0 \
    --check-delay-ms 3 --json --out "$SMOKE_DIR/crash.json" >/dev/null 2>&1 &
SMOKE_PID=$!
for _ in $(seq 1 600); do
    if compgen -G "$SMOKE_DIR/ckpt/ckpt-*.json" >/dev/null; then break; fi
    if ! kill -0 "$SMOKE_PID" 2>/dev/null; then
        echo "resume smoke: checkpointed run finished before any dump was seen"
        exit 1
    fi
    sleep 0.1
done
sleep 0.3 # let it get into the level so the kill lands mid-work
kill -9 "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
"$OCDD_BIN" profile "$SMOKE_DIR/table.csv" --resume "$SMOKE_DIR/ckpt" \
    --json --out "$SMOKE_DIR/res.json" >/dev/null
normalize='s/"elapsed_ms":[0-9.]*,//; s/"checkpoint":{[^}]*},//'
sed "$normalize" "$SMOKE_DIR/ref.json" >"$SMOKE_DIR/ref.norm"
sed "$normalize" "$SMOKE_DIR/res.json" >"$SMOKE_DIR/res.norm"
diff "$SMOKE_DIR/ref.norm" "$SMOKE_DIR/res.norm" || {
    echo "resume smoke: resumed report differs from the uninterrupted reference"
    exit 1
}
"$OCDD_BIN" dump-dot "$SMOKE_DIR/ckpt" --csv "$SMOKE_DIR/table.csv" |
    grep -q '^digraph ocdd_lattice {' || {
    echo "resume smoke: dump-dot did not emit a DOT digraph"
    exit 1
}
echo "resume smoke: SIGKILLed run resumed byte-identically; dump-dot ok"

if [[ "$(rustc -vV | sed -n 's/^host: //p')" == x86_64-* ]]; then
    echo "==> simd scan-kernel lane (--features simd)"
    # The explicit SSE2/AVX2 kernels replace the portable blockwise folds;
    # the scan/check/partition differential suites re-run against them so
    # the intrinsics are held to the same byte-identical-outcome bar
    # (DESIGN.md §12).
    cargo test -q -p ocdd-relation --features simd
    cargo test -q -p ocdd-core --features simd
else
    echo "==> simd lane skipped (x86-64 only; host is $(rustc -vV | sed -n 's/^host: //p'))"
fi

if [[ "${OCDD_CI_LOOM:-0}" == "1" ]]; then
    echo "==> loom interleaving models (ocdd-core --features loom)"
    # Swaps the scheduler/epoch-cache primitives for the model-checking
    # shims and explores every interleaving of the loom_models tests; the
    # rest of the ocdd-core suite runs against the passthrough primitives.
    cargo test -q -p ocdd-core --features loom
else
    echo "==> loom lane skipped (set OCDD_CI_LOOM=1 to enable)"
fi

if [[ "${OCDD_CI_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer lane (nightly + rust-src)"
    # -Zbuild-std needs the nightly rust-src component so std itself is
    # instrumented (uninstrumented std yields false positives).
    if rustup toolchain list 2>/dev/null | grep -q nightly &&
        rustup component list --toolchain nightly 2>/dev/null |
        grep -q "^rust-src (installed)"; then
        host="$(rustc -vV | sed -n 's/^host: //p')"
        for filter in scheduler shared_cache; do
            RUSTFLAGS="-Zsanitizer=thread" \
                cargo +nightly test -q -p ocdd-core -Zbuild-std \
                --target "$host" --lib "$filter" ||
                {
                    echo "TSan lane failed ($filter)"
                    exit 1
                }
        done
    else
        echo "TSan lane skipped: nightly toolchain with rust-src not installed"
    fi
else
    echo "==> TSan lane skipped (set OCDD_CI_TSAN=1 to enable)"
fi

if [[ "${OCDD_CI_MIRI:-0}" == "1" ]]; then
    echo "==> Miri lane (nightly + miri component)"
    if rustup component list --toolchain nightly 2>/dev/null |
        grep -q "^miri.*(installed)"; then
        for filter in scheduler shared_cache; do
            cargo +nightly miri test -q -p ocdd-core --lib "$filter" ||
                {
                    echo "Miri lane failed ($filter)"
                    exit 1
                }
        done
    else
        echo "Miri lane skipped: miri component not installed"
    fi
else
    echo "==> Miri lane skipped (set OCDD_CI_MIRI=1 to enable)"
fi

echo "==> sample-first triage smoke (bench_approx)"
# A scaled-down run of the BENCH_approx.json comparison: the sampled
# pipeline must still match the exhaustive baseline (F1) and save full
# scans on the smoke workload. The document is written atomically
# (ocdd_iosafe) into results/ next to the lint findings.
cargo run -q -p ocdd-bench --bin bench_approx -- \
    --rows 20000 --sample 2000 --out results/BENCH_approx.json
grep -q '"headline":' results/BENCH_approx.json || {
    echo "bench_approx smoke: no headline object in results/BENCH_approx.json"
    exit 1
}
grep -q '"f1": 1.000000' results/BENCH_approx.json || {
    echo "bench_approx smoke: sampled pipeline diverged from the exhaustive baseline"
    exit 1
}

echo "==> criterion smoke (cargo bench -- --test)"
cargo bench -p ocdd-bench -- --test

echo "==> check_throughput criterion group (worker-scaling sweep)"
cargo bench -p ocdd-bench --bench check_throughput -- --test

echo "==> ci.sh: all green"
