#!/usr/bin/env bash
# Repo gate: format, lints, full test suite, criterion smoke run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features fault-injection"
cargo test -q --features fault-injection

echo "==> fault-injection stress iteration (RUST_BACKTRACE=1)"
RUST_BACKTRACE=1 cargo test -q --features fault-injection --test fault_injection

echo "==> criterion smoke (cargo bench -- --test)"
cargo bench -p ocdd-bench -- --test

echo "==> ci.sh: all green"
