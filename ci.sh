#!/usr/bin/env bash
# Repo gate: format, lints, full test suite, criterion smoke run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> criterion smoke (cargo bench -- --test)"
cargo bench -p ocdd-bench -- --test

echo "==> ci.sh: all green"
