#!/usr/bin/env bash
# Repo gate: format, lints, full test suite, criterion smoke run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features fault-injection"
cargo test -q --features fault-injection

echo "==> fault-injection stress iteration (RUST_BACKTRACE=1)"
RUST_BACKTRACE=1 cargo test -q --features fault-injection --test fault_injection

echo "==> work-stealing differential suite (workers 1 and 4 vs Sequential)"
# The determinism matrix and proptest differentials pin WorkStealing(1) and
# WorkStealing(4) — byte-identical results, budget truncation and fault
# quarantine included; any divergence fails the run.
cargo test -q --test parallel_determinism
cargo test -q --test property_based workstealing

echo "==> criterion smoke (cargo bench -- --test)"
cargo bench -p ocdd-bench -- --test

echo "==> check_throughput criterion group (worker-scaling sweep)"
cargo bench -p ocdd-bench --bench check_throughput -- --test

echo "==> ci.sh: all green"
