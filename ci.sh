#!/usr/bin/env bash
# Repo gate: invariant lint, format, lints, docs, full test suite,
# criterion smoke run. Opt-in concurrency-audit lanes:
#   OCDD_CI_LOOM=1  — loom interleaving models (scheduler + epoch cache)
#   OCDD_CI_TSAN=1  — ThreadSanitizer pass (needs a nightly toolchain)
#   OCDD_CI_MIRI=1  — Miri pass over ocdd-core (needs the miri component)
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> ocdd-lint (workspace invariant rules)"
# Hard gate before clippy: panic-reachability over the call graph,
# lock-order acyclicity, determinism taint, plus the line rules (see
# DESIGN.md §10–§11). The stable JSON findings document is uploaded to
# results/ for revision-to-revision diffing (scripts/lint_diff.sh) and the
# finding count is gated against the checked-in baseline.
mkdir -p results
cargo run -q -p ocdd-lint -- --emit json >results/lint_findings.json || true
lint_count="$(sed -n 's/^  "count": \([0-9]*\),$/\1/p' results/lint_findings.json)"
lint_baseline="$(cat results/lint_baseline.txt)"
if [[ -z "$lint_count" ]]; then
    echo "ocdd-lint: could not parse results/lint_findings.json"
    exit 1
fi
if [[ "$lint_count" -gt "$lint_baseline" ]]; then
    cargo run -q -p ocdd-lint || true # re-run for the human-readable witnesses
    echo "ocdd-lint: $lint_count finding(s) exceed the checked-in baseline ($lint_baseline)"
    exit 1
fi
echo "ocdd-lint: $lint_count finding(s) (baseline $lint_baseline)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features fault-injection"
cargo test -q --features fault-injection

echo "==> fault-injection stress iteration (RUST_BACKTRACE=1)"
RUST_BACKTRACE=1 cargo test -q --features fault-injection --test fault_injection

echo "==> work-stealing differential suite (workers 1 and 4 vs Sequential)"
# The determinism matrix and proptest differentials pin WorkStealing(1) and
# WorkStealing(4) — byte-identical results, budget truncation and fault
# quarantine included; any divergence fails the run.
cargo test -q --test parallel_determinism
cargo test -q --test property_based workstealing

if [[ "$(rustc -vV | sed -n 's/^host: //p')" == x86_64-* ]]; then
    echo "==> simd scan-kernel lane (--features simd)"
    # The explicit SSE2/AVX2 kernels replace the portable blockwise folds;
    # the scan/check/partition differential suites re-run against them so
    # the intrinsics are held to the same byte-identical-outcome bar
    # (DESIGN.md §12).
    cargo test -q -p ocdd-relation --features simd
    cargo test -q -p ocdd-core --features simd
else
    echo "==> simd lane skipped (x86-64 only; host is $(rustc -vV | sed -n 's/^host: //p'))"
fi

if [[ "${OCDD_CI_LOOM:-0}" == "1" ]]; then
    echo "==> loom interleaving models (ocdd-core --features loom)"
    # Swaps the scheduler/epoch-cache primitives for the model-checking
    # shims and explores every interleaving of the loom_models tests; the
    # rest of the ocdd-core suite runs against the passthrough primitives.
    cargo test -q -p ocdd-core --features loom
else
    echo "==> loom lane skipped (set OCDD_CI_LOOM=1 to enable)"
fi

if [[ "${OCDD_CI_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer lane (nightly + rust-src)"
    # -Zbuild-std needs the nightly rust-src component so std itself is
    # instrumented (uninstrumented std yields false positives).
    if rustup toolchain list 2>/dev/null | grep -q nightly &&
        rustup component list --toolchain nightly 2>/dev/null |
        grep -q "^rust-src (installed)"; then
        host="$(rustc -vV | sed -n 's/^host: //p')"
        for filter in scheduler shared_cache; do
            RUSTFLAGS="-Zsanitizer=thread" \
                cargo +nightly test -q -p ocdd-core -Zbuild-std \
                --target "$host" --lib "$filter" ||
                {
                    echo "TSan lane failed ($filter)"
                    exit 1
                }
        done
    else
        echo "TSan lane skipped: nightly toolchain with rust-src not installed"
    fi
else
    echo "==> TSan lane skipped (set OCDD_CI_TSAN=1 to enable)"
fi

if [[ "${OCDD_CI_MIRI:-0}" == "1" ]]; then
    echo "==> Miri lane (nightly + miri component)"
    if rustup component list --toolchain nightly 2>/dev/null |
        grep -q "^miri.*(installed)"; then
        for filter in scheduler shared_cache; do
            cargo +nightly miri test -q -p ocdd-core --lib "$filter" ||
                {
                    echo "Miri lane failed ($filter)"
                    exit 1
                }
        done
    else
        echo "Miri lane skipped: miri component not installed"
    fi
else
    echo "==> Miri lane skipped (set OCDD_CI_MIRI=1 to enable)"
fi

echo "==> criterion smoke (cargo bench -- --test)"
cargo bench -p ocdd-bench -- --test

echo "==> check_throughput criterion group (worker-scaling sweep)"
cargo bench -p ocdd-bench --bench check_throughput -- --test

echo "==> ci.sh: all green"
