#!/usr/bin/env bash
# Diff ocdd-lint findings between two revisions.
#
#   scripts/lint_diff.sh             # HEAD vs the working tree
#   scripts/lint_diff.sh OLD         # OLD vs the working tree
#   scripts/lint_diff.sh OLD NEW     # OLD vs NEW (any git revisions)
#
# Each revision's tree is extracted with `git archive` and scanned by the
# *current* linter binary (tool constant, corpus varies), the `--emit json`
# documents are reduced to sorted "rule file:line" triples, and the two
# sides are compared. Exit status: 0 when no finding was introduced, 1 when
# the NEW side has findings absent from OLD — so the script doubles as a
# review gate even while a nonzero baseline exists.
#
# All sorting and comparison run under LC_ALL=C: `comm` silently produces
# garbage when its inputs were sorted under a different collation than its
# own, and a locale-dependent order turns a mere findings reordering into
# spurious "introduced" lines.
set -euo pipefail
export LC_ALL=C
cd "$(dirname "$0")/.."

old_rev="${1:-HEAD}"
new_rev="${2:-}"

cleanup_paths=()
cleanup() {
    rm -rf "${cleanup_paths[@]}"
}
trap cleanup EXIT

# Print one "rule file:line" per finding of the workspace at $1, sorted.
findings() {
    local root="$1" json
    json="$(mktemp)"
    cleanup_paths+=("$json")
    cargo run -q -p ocdd-lint -- "$root" --emit json >"$json" || true
    sed -n 's/.*"rule": "\([^"]*\)", "file": "\([^"]*\)", "line": \([0-9]*\),.*/\1 \2:\3/p' \
        "$json" | sort -u
}

# Extract revision $1 into a temp tree and echo the tree's path.
extract() {
    local rev="$1" dir
    dir="$(mktemp -d)"
    cleanup_paths+=("$dir")
    git archive "$rev" | tar -x -C "$dir"
    echo "$dir"
}

old_list="$(mktemp)"
new_list="$(mktemp)"
cleanup_paths+=("$old_list" "$new_list")

findings "$(extract "$old_rev")" >"$old_list"
if [[ -n "$new_rev" ]]; then
    findings "$(extract "$new_rev")" >"$new_list"
    new_label="$new_rev"
else
    findings "." >"$new_list"
    new_label="working tree"
fi

fixed="$(comm -23 "$old_list" "$new_list")"
introduced="$(comm -13 "$old_list" "$new_list")"

if [[ -n "$fixed" ]]; then
    echo "fixed since $old_rev:"
    echo "$fixed" | sed 's/^/  - /'
fi
if [[ -n "$introduced" ]]; then
    echo "introduced in $new_label:"
    echo "$introduced" | sed 's/^/  + /'
    exit 1
fi
echo "lint_diff: no findings introduced ($old_rev -> $new_label)"
