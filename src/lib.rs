//! # ocddiscover — order dependency discovery through order compatibility
//!
//! Facade crate for the OCDDISCOVER reproduction (Consonni, Montresor,
//! Sottovia, Velegrakis, EDBT 2019). Re-exports the substrate crates and
//! the most commonly used items so downstream users can depend on a single
//! crate:
//!
//! ```
//! use ocddiscover::{discover, DiscoveryConfig, Relation, Value};
//!
//! let rel = Relation::from_columns(vec![
//!     ("a".into(), vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
//!     ("b".into(), vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
//! ]).unwrap();
//! let result = discover(&rel, &DiscoveryConfig::default());
//! assert_eq!(result.equivalence_classes, vec![vec![0, 1]]); // a <-> b
//! ```
//!
//! See the subcrates for details:
//! * [`relation`] — typed columnar tables, CSV I/O, statistics;
//! * [`core`] — the OCDDISCOVER algorithm, axioms, expansion;
//! * [`baselines`] — ORDER, FASTOD and TANE-style FD discovery;
//! * [`datasets`] — the paper's example tables and synthetic workloads.

#![warn(missing_docs)]
pub use ocdd_baselines as baselines;
pub use ocdd_core as core;
pub use ocdd_datasets as datasets;
pub use ocdd_relation as relation;

pub use ocdd_core::{
    check_ocd, check_od, check_od_after_ocd, columns_reduction, discover, discover_approximate,
    discover_approximate_resume, discover_approximate_with, discover_resume, latest_snapshot,
    read_snapshot, snapshot_to_dot, ApproxConfig, ApproxStats, ApproximateResult, AttrList,
    CheckOutcome, CheckerBackend, CheckpointPolicy, DiscoveryConfig, DiscoveryResult, FaultPlan,
    Ocd, Od, OrderEquivalence, ParallelMode, RunController, SchedulerStats, SearchSnapshot,
    SnapshotError, TerminationReason, WorkerSchedStats,
};
pub use ocdd_relation::{
    manifest_hash, read_csv_path, read_csv_str, CsvOptions, Relation, SampleSpec, SampleStrategy,
    Value,
};
