//! `ocdd` — command-line order dependency profiler.
//!
//! ```text
//! ocdd profile  <file.csv> [--algo ocdd|order|fastod|tane|bidi|approx]
//!               [--threads N] [--lex] [--epsilon E] [--budget SECS]
//!               [--top-k K] [--no-header] [--sep C] [--show-table] [--json]
//!               [--out FILE] [--checkpoint-dir D] [--checkpoint-every N]
//!               [--checkpoint-keep N] [--resume FILE|DIR]
//!               [--sample N] [--confidence C] [--seed S] [--stratify COL]
//! ocdd dump-dot <dump.json|DIR> [--csv file.csv] [--no-header] [--sep C]
//! ocdd dataset  <name> [--rows N]         # emit a bundled dataset as CSV
//! ocdd simplify <file.csv> --order-by a,b,c
//! ocdd list                               # list bundled datasets
//! ```
//!
//! `--checkpoint-dir` turns on durable checkpointing: the search dumps its
//! frontier at every level boundary (atomic tmp+fsync+rename writes), and
//! `--resume` rebuilds the frontier from a dump (or the newest dump in a
//! directory) and continues — producing byte-identical results to an
//! uninterrupted run. `dump-dot` renders a dump as a GraphViz lattice.
//!
//! `--algo approx` runs the sample-first pipeline: `--sample N` triages
//! candidates on a seeded N-row sample (uniform, or stratified by the
//! `--stratify` column) with a Hoeffding interval at `--confidence`,
//! escalating only borderline candidates to full-data checks. Checkpoint
//! and `--resume` work here too: dumps record the sampling provenance and
//! resume refuses a dump whose sample does not match the flags.

use ocddiscover::baselines::{fastod, order_discover, tane, FastodConfig, OrderConfig, TaneConfig};
use ocddiscover::core::approximate::{
    discover_approximate_resume, discover_approximate_with, ApproxConfig, ApproximateResult,
};
use ocddiscover::core::bidirectional::discover_bidirectional;
use ocddiscover::core::entropy::discover_top_k;
use ocddiscover::core::rewrite::simplify_with_data;
use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::relation::pretty::{render_summary, render_table};
use ocddiscover::relation::{write_csv, TypingMode};
use ocddiscover::{
    discover, discover_resume, latest_snapshot, manifest_hash, read_csv_path, read_snapshot,
    snapshot_to_dot, CheckpointPolicy, CsvOptions, DiscoveryConfig, DiscoveryResult, ParallelMode,
    Relation, SampleStrategy, SearchSnapshot,
};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

#[cfg(unix)]
unsafe fn libc_sigpipe_default() {
    // Minimal FFI shim to avoid a libc dependency: SIGPIPE = 13, SIG_DFL = 0.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe { signal(13, 0) };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ocdd profile <file.csv> [--algo ocdd|order|fastod|tane|bidi|approx] \
         [--threads N] [--mode static|rayon|steal] [--lex] [--epsilon E] [--budget SECS] \
         [--top-k K] [--no-header] [--sep C] [--show-table] [--json] [--out FILE] \
         [--checkpoint-dir D] [--checkpoint-every N] [--checkpoint-keep N] \
         [--resume FILE|DIR] [--sample N] [--confidence C] [--seed S] \
         [--stratify COL]\n  \
         ocdd dump-dot <dump.json|DIR> [--csv file.csv] [--no-header] [--sep C]\n  \
         ocdd dataset <name> [--rows N]\n  \
         ocdd simplify <file.csv> --order-by a,b,c\n  ocdd list"
    );
    ExitCode::from(2)
}

struct ProfileArgs {
    path: String,
    algo: String,
    config: DiscoveryConfig,
    csv: CsvOptions,
    epsilon: f64,
    sample: Option<usize>,
    confidence: Option<f64>,
    seed: Option<u64>,
    stratify: Option<String>,
    top_k: Option<usize>,
    show_table: bool,
    json: bool,
    out: Option<String>,
    resume: Option<String>,
    check_delay_ms: Option<u64>,
}

fn parse_profile(args: &[String]) -> Option<ProfileArgs> {
    let mut out = ProfileArgs {
        path: String::new(),
        algo: "ocdd".to_owned(),
        config: DiscoveryConfig::default(),
        csv: CsvOptions::default(),
        epsilon: 0.01,
        sample: None,
        confidence: None,
        seed: None,
        stratify: None,
        top_k: None,
        show_table: false,
        json: false,
        out: None,
        resume: None,
        check_delay_ms: None,
    };
    let mut threads: usize = 1;
    let mut mode = "static".to_owned();
    let mut ckpt_dir: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut ckpt_keep: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--algo" => out.algo = iter.next()?.clone(),
            "--threads" => threads = iter.next()?.parse().ok()?,
            "--mode" => mode = iter.next()?.clone(),
            "--lex" => out.csv.typing = TypingMode::ForceLexicographic,
            "--epsilon" => out.epsilon = iter.next()?.parse().ok()?,
            "--sample" => out.sample = Some(iter.next()?.parse().ok()?),
            "--confidence" => out.confidence = Some(iter.next()?.parse().ok()?),
            "--seed" => out.seed = Some(iter.next()?.parse().ok()?),
            "--stratify" => out.stratify = Some(iter.next()?.clone()),
            "--budget" => {
                let secs: f64 = iter.next()?.parse().ok()?;
                out.config.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--top-k" => out.top_k = Some(iter.next()?.parse().ok()?),
            "--no-header" => out.csv.has_header = false,
            "--sep" => out.csv.separator = iter.next()?.chars().next()?,
            "--show-table" => out.show_table = true,
            "--json" => out.json = true,
            "--out" => out.out = Some(iter.next()?.clone()),
            "--checkpoint-dir" => ckpt_dir = Some(iter.next()?.clone()),
            "--checkpoint-every" => ckpt_every = Some(iter.next()?.parse().ok()?),
            "--checkpoint-keep" => ckpt_keep = Some(iter.next()?.parse().ok()?),
            "--resume" => out.resume = Some(iter.next()?.clone()),
            "--check-delay-ms" => out.check_delay_ms = Some(iter.next()?.parse().ok()?),
            other if out.path.is_empty() && !other.starts_with('-') => {
                out.path = other.to_owned();
            }
            _ => return None,
        }
    }
    if let Some(dir) = ckpt_dir {
        let mut policy = CheckpointPolicy::new(dir);
        if let Some(n) = ckpt_every {
            policy.every_levels = n.max(1);
        }
        if let Some(n) = ckpt_keep {
            policy.keep_last = n;
        }
        // A CLI run that checkpoints is one the operator may want to
        // resume or inspect — keep the final dump around.
        policy.delete_on_complete = false;
        out.config.checkpoint = Some(policy);
    } else if ckpt_every.is_some() || ckpt_keep.is_some() {
        return None; // interval/retention without --checkpoint-dir
    }
    out.config.mode = if threads <= 1 && mode != "steal" {
        ParallelMode::Sequential
    } else {
        match mode.as_str() {
            "static" => ParallelMode::StaticQueues(threads),
            "rayon" => ParallelMode::Rayon(threads),
            "steal" => ParallelMode::WorkStealing(threads.max(1)),
            _ => return None,
        }
    };
    (!out.path.is_empty()).then_some(out)
}

/// Resolve a `--resume`/`dump-dot` operand: a file is read directly, a
/// directory means "the newest checkpoint in there".
fn load_snapshot(spec: &str) -> Result<SearchSnapshot, String> {
    let path = Path::new(spec);
    let file = if path.is_dir() {
        latest_snapshot(path).map_err(|e| e.to_string())?
    } else {
        path.to_path_buf()
    };
    read_snapshot(&file).map_err(|e| format!("{}: {e}", file.display()))
}

/// Install the fault-injection check delay used by the crash harness, or
/// explain why the flag is unavailable in this build.
#[cfg(feature = "fault-injection")]
fn apply_check_delay(config: &mut DiscoveryConfig, ms: u64) -> bool {
    let plan = ocddiscover::FaultPlan::delay_checks(Duration::from_millis(ms));
    config.fault = Some(std::sync::Arc::new(plan));
    true
}

#[cfg(not(feature = "fault-injection"))]
fn apply_check_delay(_config: &mut DiscoveryConfig, _ms: u64) -> bool {
    eprintln!("ocdd: --check-delay-ms requires a build with --features fault-injection");
    false
}

fn print_discovery(rel: &Relation, result: &ocddiscover::DiscoveryResult) {
    for &c in &result.constants {
        println!("constant    {}", rel.meta(c).name);
    }
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class.iter().map(|&c| rel.meta(c).name.as_str()).collect();
        println!("equivalent  {}", names.join(" <-> "));
    }
    for ocd in &result.ocds {
        println!("ocd         {}", ocd.display(rel));
    }
    for od in &result.ods {
        println!("od          {}", od.display(rel));
    }
    println!(
        "-- {} checks, {:?}, {}",
        result.checks, result.elapsed, result.termination
    );
}

/// Report a discovery run: JSON to `--out` (atomic write), JSON to stdout
/// under `--json`, the human listing otherwise.
fn emit_result(rel: &Relation, result: &DiscoveryResult, p: &ProfileArgs) -> ExitCode {
    if p.json || p.out.is_some() {
        let json = ocddiscover::core::json::result_to_json(result, rel);
        if let Some(path) = &p.out {
            if let Err(e) = ocdd_iosafe::atomic_write_str(Path::new(path), &json) {
                eprintln!("ocdd: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if p.json {
            println!("{json}");
        }
    }
    if !p.json {
        print_discovery(rel, result);
    }
    ExitCode::SUCCESS
}

/// Report an approximate-pipeline run: JSON (with the triage accounting
/// object) to `--out`/stdout, or a human listing with the sample stats.
fn emit_approx_result(rel: &Relation, res: &ApproximateResult, p: &ProfileArgs) -> ExitCode {
    if p.json || p.out.is_some() {
        let json = ocddiscover::core::json::approx_result_to_json(res, rel);
        if let Some(path) = &p.out {
            if let Err(e) = ocdd_iosafe::atomic_write_str(Path::new(path), &json) {
                eprintln!("ocdd: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if p.json {
            println!("{json}");
        }
    }
    if !p.json {
        for aocd in &res.ocds {
            println!("ocd (err {:.3})  {}", aocd.error, aocd.ocd.display(rel));
        }
        for od in &res.ods {
            println!("od              {}", od.display(rel));
        }
        if let Some(st) = &res.approx {
            if st.exhaustive {
                println!("-- exhaustive run on all {} rows", st.total_rows);
            } else {
                println!(
                    "-- sample {}/{} rows (seed {:#x}): {} accepted, {} rejected, \
                     {} escalated of {} estimates; {} full checks saved",
                    st.sample_rows,
                    st.total_rows,
                    st.seed,
                    st.accepted_by_sample,
                    st.rejected_by_sample,
                    st.escalated,
                    st.estimated,
                    st.full_checks_saved
                );
            }
        }
        println!(
            "-- ε = {}, {} checks, {}",
            p.epsilon, res.checks, res.termination
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let Some(mut p) = parse_profile(args) else {
        return usage();
    };
    if let Some(ms) = p.check_delay_ms {
        if !apply_check_delay(&mut p.config, ms) {
            return ExitCode::FAILURE;
        }
    }
    let rel = match read_csv_path(&p.path, &p.csv) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ocdd: cannot read {}: {e}", p.path);
            return ExitCode::FAILURE;
        }
    };
    if !p.json {
        println!("{}", render_summary(&rel));
        if p.show_table {
            println!("{}", render_table(&rel, 10));
        }
    }

    if p.algo != "ocdd"
        && p.algo != "approx"
        && (p.resume.is_some() || p.out.is_some() || p.config.checkpoint.is_some())
    {
        eprintln!("ocdd: --resume/--out/--checkpoint-dir require --algo ocdd or --algo approx");
        return ExitCode::FAILURE;
    }
    if p.algo != "approx"
        && (p.sample.is_some()
            || p.confidence.is_some()
            || p.seed.is_some()
            || p.stratify.is_some())
    {
        eprintln!("ocdd: --sample/--confidence/--seed/--stratify require --algo approx");
        return ExitCode::FAILURE;
    }
    match p.algo.as_str() {
        "ocdd" => {
            if let Some(spec) = &p.resume {
                if p.top_k.is_some() {
                    eprintln!("ocdd: --resume cannot be combined with --top-k");
                    return ExitCode::FAILURE;
                }
                let snap = match load_snapshot(spec) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("ocdd: cannot resume: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                return match discover_resume(&rel, &p.config, &snap) {
                    Ok(result) => emit_result(&rel, &result, &p),
                    Err(e) => {
                        eprintln!("ocdd: cannot resume: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            if let Some(k) = p.top_k {
                let guided = discover_top_k(&rel, k, &p.config).expect("k within range");
                let projected = rel.project(&guided.selected).expect("valid projection");
                if !p.json {
                    println!("(profiling the {k} most diverse columns)");
                }
                return emit_result(&projected, &guided.result, &p);
            }
            let result = discover(&rel, &p.config);
            return emit_result(&rel, &result, &p);
        }
        "order" => {
            let res = order_discover(
                &rel,
                &OrderConfig {
                    time_budget: p.config.time_budget,
                    ..OrderConfig::default()
                },
            );
            for od in &res.ods {
                println!("od          {}", od.display(&rel));
            }
            println!(
                "-- {} checks, {:?}, {}",
                res.checks,
                res.elapsed,
                if res.complete { "complete" } else { "PARTIAL" }
            );
        }
        "fastod" => {
            let res = fastod(
                &rel,
                &FastodConfig {
                    time_budget: p.config.time_budget,
                    ..FastodConfig::default()
                },
            );
            for fd in &res.fds {
                println!("fd          {fd}");
            }
            for ocd in &res.ocds {
                println!("ocd         {ocd}");
            }
            println!(
                "-- {} canonical deps, {} checks, {:?}, {}",
                res.od_count(),
                res.checks,
                res.elapsed,
                if res.complete { "complete" } else { "PARTIAL" }
            );
        }
        "tane" => {
            let res = tane(
                &rel,
                &TaneConfig {
                    time_budget: p.config.time_budget,
                    ..TaneConfig::default()
                },
            );
            for fd in &res.fds {
                println!("fd          {fd}");
            }
            println!("-- {} minimal FDs, {:?}", res.fds.len(), res.elapsed);
        }
        "bidi" => {
            let res = discover_bidirectional(&rel, &p.config);
            for class in &res.equivalence_classes {
                let marks: Vec<String> = class.iter().map(|m| m.to_string()).collect();
                println!("equivalent  {}", marks.join(" <-> "));
            }
            for ocd in &res.ocds {
                println!("ocd         {ocd}");
            }
            for od in &res.ods {
                println!("od          {od}");
            }
            println!("-- {} checks, {}", res.checks, res.termination);
        }
        "approx" => {
            let mut cfg = ApproxConfig {
                base: p.config.clone(),
                sample_rows: p.sample,
                epsilon: p.epsilon,
                ..ApproxConfig::default()
            };
            if let Some(c) = p.confidence {
                cfg.confidence = c;
            }
            if let Some(s) = p.seed {
                cfg.seed = s;
            }
            if let Some(name) = &p.stratify {
                match rel.column_id(name) {
                    Ok(col) => cfg.strategy = SampleStrategy::Stratified(col),
                    Err(e) => {
                        eprintln!("ocdd: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let res = if let Some(spec) = &p.resume {
                let snap = match load_snapshot(spec) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("ocdd: cannot resume: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match discover_approximate_resume(&rel, &cfg, &snap) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("ocdd: cannot resume: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                discover_approximate_with(&rel, &cfg)
            };
            return emit_approx_result(&rel, &res, &p);
        }
        other => {
            eprintln!("ocdd: unknown algorithm {other:?}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}

fn cmd_dump_dot(args: &[String]) -> ExitCode {
    let mut spec: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut csv = CsvOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => match iter.next() {
                Some(v) => csv_path = Some(v.clone()),
                None => return usage(),
            },
            "--no-header" => csv.has_header = false,
            "--sep" => match iter.next().and_then(|v| v.chars().next()) {
                Some(c) => csv.separator = c,
                None => return usage(),
            },
            other if spec.is_none() && !other.starts_with('-') => spec = Some(other.to_owned()),
            _ => return usage(),
        }
    }
    let Some(spec) = spec else {
        return usage();
    };
    let snap = match load_snapshot(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ocdd: cannot read dump: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rel = match csv_path {
        Some(path) => match read_csv_path(&path, &csv) {
            Ok(rel) => {
                // Refuse to label the lattice with columns from a different
                // table than the one the dump was taken from.
                let have = manifest_hash(&rel);
                if have != snap.manifest {
                    eprintln!(
                        "ocdd: {path} does not match the dump (manifest {have:016x}, dump has {:016x})",
                        snap.manifest
                    );
                    return ExitCode::FAILURE;
                }
                Some(rel)
            }
            Err(e) => {
                eprintln!("ocdd: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    print!("{}", snapshot_to_dot(&snap, rel.as_ref()));
    ExitCode::SUCCESS
}

fn cmd_dataset(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(ds) = Dataset::by_name(name) else {
        eprintln!("ocdd: unknown dataset {name:?} (try `ocdd list`)");
        return ExitCode::FAILURE;
    };
    let mut rows = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        if arg == "--rows" {
            rows = iter.next().and_then(|v| v.parse().ok());
        }
    }
    let scale = rows.map_or(RowScale::Default, RowScale::Rows);
    print!("{}", write_csv(&ds.generate(scale)));
    ExitCode::SUCCESS
}

fn cmd_simplify(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut keys: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--order-by" => {
                keys = match iter.next() {
                    Some(v) => v.split(',').map(|s| s.trim().to_owned()).collect(),
                    None => return usage(),
                };
            }
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            _ => return usage(),
        }
    }
    let (Some(path), false) = (path, keys.is_empty()) else {
        return usage();
    };
    let rel = match read_csv_path(&path, &CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ocdd: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<usize> = match keys
        .iter()
        .map(|k| rel.column_id(k))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("ocdd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let simplified = simplify_with_data(&rel, &ids);
    println!("original:   ORDER BY {}", keys.join(", "));
    println!("simplified: {}", simplified.display(&rel));
    for (col, reason) in &simplified.dropped {
        println!("  dropped {}: {reason:?}", rel.meta(*col).name);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Downstream pipes (e.g. `ocdd dataset … | head`) may close stdout
    // early; treat the resulting write failure as a clean exit rather than
    // a panic by taking the default SIGPIPE disposition on Unix.
    #[cfg(unix)]
    unsafe {
        // SAFETY: resetting a signal disposition before any I/O happens.
        libc_sigpipe_default();
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("dump-dot") => cmd_dump_dot(&args[1..]),
        Some("dataset") => cmd_dataset(&args[1..]),
        Some("simplify") => cmd_simplify(&args[1..]),
        Some("list") => {
            for ds in Dataset::all() {
                println!(
                    "{:<12} {:>9} rows × {:>3} cols{}",
                    ds.name(),
                    ds.default_rows(),
                    ds.default_columns(),
                    if ds.exceeds_time_limit() {
                        "  (exceeds time limits)"
                    } else {
                        ""
                    }
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
