//! `ocdd` — command-line order dependency profiler.
//!
//! ```text
//! ocdd profile  <file.csv> [--algo ocdd|order|fastod|tane|bidi|approx]
//!               [--threads N] [--lex] [--epsilon E] [--budget SECS]
//!               [--top-k K] [--no-header] [--sep C] [--show-table] [--json]
//! ocdd dataset  <name> [--rows N]         # emit a bundled dataset as CSV
//! ocdd simplify <file.csv> --order-by a,b,c
//! ocdd list                               # list bundled datasets
//! ```

use ocddiscover::baselines::{fastod, order_discover, tane, FastodConfig, OrderConfig, TaneConfig};
use ocddiscover::core::approximate::discover_approximate;
use ocddiscover::core::bidirectional::discover_bidirectional;
use ocddiscover::core::entropy::discover_top_k;
use ocddiscover::core::rewrite::simplify_with_data;
use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::relation::pretty::{render_summary, render_table};
use ocddiscover::relation::{write_csv, TypingMode};
use ocddiscover::{discover, read_csv_path, CsvOptions, DiscoveryConfig, ParallelMode, Relation};
use std::process::ExitCode;
use std::time::Duration;

#[cfg(unix)]
unsafe fn libc_sigpipe_default() {
    // Minimal FFI shim to avoid a libc dependency: SIGPIPE = 13, SIG_DFL = 0.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe { signal(13, 0) };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ocdd profile <file.csv> [--algo ocdd|order|fastod|tane|bidi|approx] \
         [--threads N] [--mode static|rayon|steal] [--lex] [--epsilon E] [--budget SECS] \
         [--top-k K] [--no-header] [--sep C] [--show-table]\n  ocdd dataset <name> [--rows N]\n  \
         ocdd simplify <file.csv> --order-by a,b,c\n  ocdd list"
    );
    ExitCode::from(2)
}

struct ProfileArgs {
    path: String,
    algo: String,
    config: DiscoveryConfig,
    csv: CsvOptions,
    epsilon: f64,
    top_k: Option<usize>,
    show_table: bool,
    json: bool,
}

fn parse_profile(args: &[String]) -> Option<ProfileArgs> {
    let mut out = ProfileArgs {
        path: String::new(),
        algo: "ocdd".to_owned(),
        config: DiscoveryConfig::default(),
        csv: CsvOptions::default(),
        epsilon: 0.01,
        top_k: None,
        show_table: false,
        json: false,
    };
    let mut threads: usize = 1;
    let mut mode = "static".to_owned();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--algo" => out.algo = iter.next()?.clone(),
            "--threads" => threads = iter.next()?.parse().ok()?,
            "--mode" => mode = iter.next()?.clone(),
            "--lex" => out.csv.typing = TypingMode::ForceLexicographic,
            "--epsilon" => out.epsilon = iter.next()?.parse().ok()?,
            "--budget" => {
                let secs: f64 = iter.next()?.parse().ok()?;
                out.config.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--top-k" => out.top_k = Some(iter.next()?.parse().ok()?),
            "--no-header" => out.csv.has_header = false,
            "--sep" => out.csv.separator = iter.next()?.chars().next()?,
            "--show-table" => out.show_table = true,
            "--json" => out.json = true,
            other if out.path.is_empty() && !other.starts_with('-') => {
                out.path = other.to_owned();
            }
            _ => return None,
        }
    }
    out.config.mode = if threads <= 1 && mode != "steal" {
        ParallelMode::Sequential
    } else {
        match mode.as_str() {
            "static" => ParallelMode::StaticQueues(threads),
            "rayon" => ParallelMode::Rayon(threads),
            "steal" => ParallelMode::WorkStealing(threads.max(1)),
            _ => return None,
        }
    };
    (!out.path.is_empty()).then_some(out)
}

fn print_discovery(rel: &Relation, result: &ocddiscover::DiscoveryResult) {
    for &c in &result.constants {
        println!("constant    {}", rel.meta(c).name);
    }
    for class in &result.equivalence_classes {
        let names: Vec<&str> = class.iter().map(|&c| rel.meta(c).name.as_str()).collect();
        println!("equivalent  {}", names.join(" <-> "));
    }
    for ocd in &result.ocds {
        println!("ocd         {}", ocd.display(rel));
    }
    for od in &result.ods {
        println!("od          {}", od.display(rel));
    }
    println!(
        "-- {} checks, {:?}, {}",
        result.checks, result.elapsed, result.termination
    );
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let Some(p) = parse_profile(args) else {
        return usage();
    };
    let rel = match read_csv_path(&p.path, &p.csv) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ocdd: cannot read {}: {e}", p.path);
            return ExitCode::FAILURE;
        }
    };
    if !p.json {
        println!("{}", render_summary(&rel));
        if p.show_table {
            println!("{}", render_table(&rel, 10));
        }
    }

    match p.algo.as_str() {
        "ocdd" => {
            if let Some(k) = p.top_k {
                let guided = discover_top_k(&rel, k, &p.config).expect("k within range");
                let projected = rel.project(&guided.selected).expect("valid projection");
                if p.json {
                    println!(
                        "{}",
                        ocddiscover::core::json::result_to_json(&guided.result, &projected)
                    );
                } else {
                    println!("(profiling the {k} most diverse columns)");
                    print_discovery(&projected, &guided.result);
                }
            } else {
                let result = discover(&rel, &p.config);
                if p.json {
                    println!("{}", ocddiscover::core::json::result_to_json(&result, &rel));
                } else {
                    print_discovery(&rel, &result);
                }
            }
        }
        "order" => {
            let res = order_discover(
                &rel,
                &OrderConfig {
                    time_budget: p.config.time_budget,
                    ..OrderConfig::default()
                },
            );
            for od in &res.ods {
                println!("od          {}", od.display(&rel));
            }
            println!(
                "-- {} checks, {:?}, {}",
                res.checks,
                res.elapsed,
                if res.complete { "complete" } else { "PARTIAL" }
            );
        }
        "fastod" => {
            let res = fastod(
                &rel,
                &FastodConfig {
                    time_budget: p.config.time_budget,
                    ..FastodConfig::default()
                },
            );
            for fd in &res.fds {
                println!("fd          {fd}");
            }
            for ocd in &res.ocds {
                println!("ocd         {ocd}");
            }
            println!(
                "-- {} canonical deps, {} checks, {:?}, {}",
                res.od_count(),
                res.checks,
                res.elapsed,
                if res.complete { "complete" } else { "PARTIAL" }
            );
        }
        "tane" => {
            let res = tane(
                &rel,
                &TaneConfig {
                    time_budget: p.config.time_budget,
                    ..TaneConfig::default()
                },
            );
            for fd in &res.fds {
                println!("fd          {fd}");
            }
            println!("-- {} minimal FDs, {:?}", res.fds.len(), res.elapsed);
        }
        "bidi" => {
            let res = discover_bidirectional(&rel, &p.config);
            for class in &res.equivalence_classes {
                let marks: Vec<String> = class.iter().map(|m| m.to_string()).collect();
                println!("equivalent  {}", marks.join(" <-> "));
            }
            for ocd in &res.ocds {
                println!("ocd         {ocd}");
            }
            for od in &res.ods {
                println!("od          {od}");
            }
            println!("-- {} checks, {}", res.checks, res.termination);
        }
        "approx" => {
            let res = discover_approximate(&rel, &p.config, p.epsilon);
            for aocd in &res.ocds {
                println!("ocd (err {:.3})  {}", aocd.error, aocd.ocd);
            }
            for od in &res.ods {
                println!("od              {od}");
            }
            println!(
                "-- ε = {}, {} checks, {}",
                p.epsilon, res.checks, res.termination
            );
        }
        other => {
            eprintln!("ocdd: unknown algorithm {other:?}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}

fn cmd_dataset(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(ds) = Dataset::by_name(name) else {
        eprintln!("ocdd: unknown dataset {name:?} (try `ocdd list`)");
        return ExitCode::FAILURE;
    };
    let mut rows = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        if arg == "--rows" {
            rows = iter.next().and_then(|v| v.parse().ok());
        }
    }
    let scale = rows.map_or(RowScale::Default, RowScale::Rows);
    print!("{}", write_csv(&ds.generate(scale)));
    ExitCode::SUCCESS
}

fn cmd_simplify(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut keys: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--order-by" => {
                keys = match iter.next() {
                    Some(v) => v.split(',').map(|s| s.trim().to_owned()).collect(),
                    None => return usage(),
                };
            }
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            _ => return usage(),
        }
    }
    let (Some(path), false) = (path, keys.is_empty()) else {
        return usage();
    };
    let rel = match read_csv_path(&path, &CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ocdd: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<usize> = match keys
        .iter()
        .map(|k| rel.column_id(k))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("ocdd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let simplified = simplify_with_data(&rel, &ids);
    println!("original:   ORDER BY {}", keys.join(", "));
    println!("simplified: {}", simplified.display(&rel));
    for (col, reason) in &simplified.dropped {
        println!("  dropped {}: {reason:?}", rel.meta(*col).name);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Downstream pipes (e.g. `ocdd dataset … | head`) may close stdout
    // early; treat the resulting write failure as a clean exit rather than
    // a panic by taking the default SIGPIPE disposition on Unix.
    #[cfg(unix)]
    unsafe {
        // SAFETY: resetting a signal disposition before any I/O happens.
        libc_sigpipe_default();
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("dataset") => cmd_dataset(&args[1..]),
        Some("simplify") => cmd_simplify(&args[1..]),
        Some("list") => {
            for ds in Dataset::all() {
                println!(
                    "{:<12} {:>9} rows × {:>3} cols{}",
                    ds.name(),
                    ds.default_rows(),
                    ds.default_columns(),
                    if ds.exceeds_time_limit() {
                        "  (exceeds time limits)"
                    } else {
                        ""
                    }
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
