//! CSV round-trip through the full pipeline: generated relation → CSV text
//! → parsed relation → identical discovery results.

use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::relation::write_csv;
use ocddiscover::{discover, read_csv_str, CsvOptions, DiscoveryConfig};

#[test]
fn generated_dataset_round_trips_through_csv() {
    for &ds in &[Dataset::Yes, Dataset::Numbers, Dataset::Hepatitis] {
        let rel = ds.generate(RowScale::Rows(120));
        let text = write_csv(&rel);
        let parsed = read_csv_str(&text, &CsvOptions::default()).expect("CSV parses back");
        assert_eq!(parsed.num_rows(), rel.num_rows(), "{}", ds.name());
        assert_eq!(parsed.num_columns(), rel.num_columns());

        let before = discover(&rel, &DiscoveryConfig::default());
        let after = discover(&parsed, &DiscoveryConfig::default());
        assert_eq!(
            before.ocds,
            after.ocds,
            "{}: OCDs change after round trip",
            ds.name()
        );
        assert_eq!(before.ods, after.ods, "{}", ds.name());
        assert_eq!(before.constants, after.constants);
        assert_eq!(before.equivalence_classes, after.equivalence_classes);
    }
}

#[test]
fn csv_with_nulls_round_trips_semantics() {
    // NULLs (written as empty fields) must keep NULL-first, NULL=NULL
    // semantics after parsing.
    let text = "a,b\n,1\n,2\n5,3\n9,4\n";
    let rel = read_csv_str(text, &CsvOptions::default()).unwrap();
    assert!(rel.meta(0).has_nulls);
    let result = discover(&rel, &DiscoveryConfig::default());
    // a (NULL,NULL,5,9) and b (1,2,3,4): sorting by a groups the NULLs
    // first; b splits within the NULL tie, so no OD a -> b, but the
    // OCD a ~ b holds (no swap).
    assert!(result.ocds.iter().any(|o| o.display(&rel) == "[a] ~ [b]"));
    assert!(!result.ods.iter().any(|o| o.display(&rel) == "[a] -> [b]"));
    // b -> a holds: b is a key and a is non-decreasing along b.
    assert!(result.ods.iter().any(|o| o.display(&rel) == "[b] -> [a]"));
}

#[test]
fn profile_arbitrary_csv_from_disk() {
    let dir = std::env::temp_dir().join("ocdd_csv_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.csv");
    std::fs::write(&path, "x,y,z\n1,10,a\n2,20,a\n3,30,b\n").unwrap();
    let rel = ocddiscover::read_csv_path(&path, &CsvOptions::default()).unwrap();
    let result = discover(&rel, &DiscoveryConfig::default());
    // x <-> y (both strictly increasing).
    assert_eq!(result.equivalence_classes, vec![vec![0, 1]]);
    std::fs::remove_file(path).ok();
}
