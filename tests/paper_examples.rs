//! End-to-end tests on the exact tables printed in the paper: Table 1
//! (tax), Table 5 (YES/NO) and Table 7 (NUMBERS), run through all four
//! algorithms.

use ocddiscover::baselines::{fastod, order_discover, tane, FastodConfig, OrderConfig, TaneConfig};
use ocddiscover::core::expand::expanded_od_count;
use ocddiscover::datasets::paper::{no_table, numbers_table, tax_table, yes_table};
use ocddiscover::{discover, DiscoveryConfig};

#[test]
fn tax_table_full_pipeline() {
    let rel = tax_table();
    let result = discover(&rel, &DiscoveryConfig::default());
    assert!(result.complete());

    // income <-> tax collapse into one equivalence class.
    let income = rel.column_id("income").unwrap();
    let tax = rel.column_id("tax").unwrap();
    assert_eq!(result.equivalence_classes, vec![vec![income, tax]]);

    // income -> bracket survives on the representative.
    let bracket = rel.column_id("bracket").unwrap();
    assert!(result
        .ods
        .iter()
        .any(|od| od.lhs.as_slice() == [income] && od.rhs.as_slice() == [bracket]));

    // income ~ savings: the §1 OCD example.
    let savings = rel.column_id("savings").unwrap();
    assert!(result.ocds.iter().any(|o| {
        let c = o.canonical();
        c.lhs.as_slice() == [income] && c.rhs.as_slice() == [savings]
    }));

    // The FD side (TANE): income -> bracket, income <-> tax as FDs.
    let fds = tane(&rel, &TaneConfig::default());
    assert!(fds
        .fds
        .iter()
        .any(|fd| fd.lhs == vec![income] && fd.rhs == bracket));
    assert!(fds
        .fds
        .iter()
        .any(|fd| fd.lhs == vec![income] && fd.rhs == tax));
    assert!(fds
        .fds
        .iter()
        .any(|fd| fd.lhs == vec![tax] && fd.rhs == income));
}

#[test]
fn yes_table_headline_comparison() {
    let rel = yes_table();

    // OCDDISCOVER finds A ~ B.
    let ours = discover(&rel, &DiscoveryConfig::default());
    assert_eq!(ours.ocds.len(), 1);
    assert_eq!(ours.ocds[0].display(&rel), "[A] ~ [B]");
    assert!(ours.ods.is_empty());
    // The expansion materializes the repeated-attribute ODs AB -> B etc.
    assert_eq!(expanded_od_count(&ours), 4);

    // ORDER finds nothing (Table 6's YES row: |Od| = 0).
    let order_res = order_discover(&rel, &OrderConfig::default());
    assert!(order_res.ods.is_empty());

    // FASTOD, being complete, also finds the compatibility (empty context).
    let fast = fastod(&rel, &FastodConfig::default());
    assert!(fast
        .ocds
        .iter()
        .any(|o| o.context.is_empty() && o.a == 0 && o.b == 1));
}

#[test]
fn no_table_nothing_to_find() {
    let rel = no_table();
    let ours = discover(&rel, &DiscoveryConfig::default());
    assert!(ours.ocds.is_empty());
    assert!(ours.ods.is_empty());
    assert!(ours.constants.is_empty());
    assert!(ours.equivalence_classes.is_empty());
    assert_eq!(expanded_od_count(&ours), 0);

    let order_res = order_discover(&rel, &OrderConfig::default());
    assert!(order_res.ods.is_empty());

    let fast = fastod(&rel, &FastodConfig::default());
    // No context can fix a swap between two columns when there is no third
    // column to condition on.
    assert!(fast.ocds.is_empty());
}

#[test]
fn numbers_table_rejects_reference_bug() {
    use ocddiscover::core::check::check_od_pairwise;
    use ocddiscover::AttrList;

    let rel = numbers_table();
    let (a, b, c) = (0usize, 1usize, 2usize);

    // The reference FASTOD's spurious dependency [B] -> [AC] is invalid.
    assert!(!check_od_pairwise(
        &rel,
        &AttrList::single(b),
        &AttrList::from_slice(&[a, c])
    ));

    // Our FASTOD does not report the FD B -> A that the OD would need.
    let fast = fastod(&rel, &FastodConfig::default());
    assert!(!fast.fds.iter().any(|fd| fd.lhs == vec![b] && fd.rhs == a));

    // Every dependency OCDDISCOVER reports on NUMBERS actually holds.
    let ours = discover(&rel, &DiscoveryConfig::default());
    for od in &ours.ods {
        assert!(
            check_od_pairwise(&rel, &od.lhs, &od.rhs),
            "{} is spurious",
            od.display(&rel)
        );
    }
    for ocd in &ours.ocds {
        let xy = ocd.lhs.concat(&ocd.rhs);
        let yx = ocd.rhs.concat(&ocd.lhs);
        assert!(
            check_od_pairwise(&rel, &xy, &yx),
            "{} is spurious",
            ocd.display(&rel)
        );
    }
}
