//! Property-based tests (proptest) on the core invariants.

use ocddiscover::core::brute::all_lists;
use ocddiscover::core::check::{check_od, check_od_pairwise};
use ocddiscover::{discover, AttrList, DiscoveryConfig, ParallelMode, Relation, Value};
use proptest::prelude::*;

/// Strategy: a small relation of `cols` integer columns with values in a
/// narrow domain (ties and violations both likely).
fn small_relation(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..4, cols..=cols), 1..=max_rows).prop_map(
        move |rows| {
            let mut columns: Vec<(String, Vec<Value>)> =
                (0..cols).map(|c| (format!("c{c}"), Vec::new())).collect();
            for row in &rows {
                for (c, &v) in row.iter().enumerate() {
                    columns[c].1.push(Value::Int(v));
                }
            }
            Relation::from_columns(columns).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast sorted-scan checker agrees with the pairwise definition on
    /// every list pair (including overlapping and multi-attribute lists).
    #[test]
    fn checker_agrees_with_pairwise_definition(rel in small_relation(3, 12)) {
        let lists = all_lists(&[0, 1, 2], 2);
        for x in &lists {
            for y in &lists {
                prop_assert_eq!(
                    check_od(&rel, x, y).is_valid(),
                    check_od_pairwise(&rel, x, y),
                    "lists {} -> {}", x, y
                );
            }
        }
    }

    /// Discovery output is invariant under row permutation (order
    /// dependencies are properties of the tuple *set*).
    #[test]
    fn discovery_invariant_under_row_shuffle(rel in small_relation(3, 12), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..rel.num_rows()).collect();
        perm.shuffle(&mut rng);
        let shuffled = Relation::from_columns(
            (0..rel.num_columns())
                .map(|c| {
                    (
                        format!("c{c}"),
                        perm.iter().map(|&r| rel.value(r, c).clone()).collect(),
                    )
                })
                .collect(),
        ).unwrap();

        let a = discover(&rel, &DiscoveryConfig::default());
        let b = discover(&shuffled, &DiscoveryConfig::default());
        prop_assert_eq!(a.ocds, b.ocds);
        prop_assert_eq!(a.ods, b.ods);
        prop_assert_eq!(a.constants, b.constants);
        prop_assert_eq!(a.equivalence_classes, b.equivalence_classes);
    }

    /// Every dependency discovery emits holds by the pairwise definition.
    #[test]
    fn discovery_is_sound(rel in small_relation(4, 10)) {
        let result = discover(&rel, &DiscoveryConfig::default());
        for od in &result.ods {
            prop_assert!(check_od_pairwise(&rel, &od.lhs, &od.rhs), "OD {}", od);
        }
        for ocd in &result.ocds {
            let xy = ocd.lhs.concat(&ocd.rhs);
            let yx = ocd.rhs.concat(&ocd.lhs);
            prop_assert!(check_od_pairwise(&rel, &xy, &yx), "OCD {}", ocd);
            prop_assert!(check_od_pairwise(&rel, &yx, &xy), "OCD {}", ocd);
            prop_assert!(ocd.is_syntactically_minimal(), "OCD {}", ocd);
        }
        // Constants really are constant; equivalences really are mutual ODs.
        for &c in &result.constants {
            prop_assert!(rel.meta(c).is_constant());
        }
        for class in &result.equivalence_classes {
            let rep = AttrList::single(class[0]);
            for &other in &class[1..] {
                let o = AttrList::single(other);
                prop_assert!(check_od_pairwise(&rel, &rep, &o));
                prop_assert!(check_od_pairwise(&rel, &o, &rep));
            }
        }
    }

    /// Differential: the work-stealing batch scheduler returns exactly the
    /// sequential result on arbitrary relations and worker counts —
    /// dependencies, check counts, per-level stats and termination alike.
    #[test]
    fn workstealing_equals_sequential(rel in small_relation(4, 14), workers in 1usize..6) {
        let seq = discover(&rel, &DiscoveryConfig::default());
        let ws = discover(&rel, &DiscoveryConfig {
            mode: ParallelMode::WorkStealing(workers),
            ..DiscoveryConfig::default()
        });
        prop_assert_eq!(&seq.ocds, &ws.ocds);
        prop_assert_eq!(&seq.ods, &ws.ods);
        prop_assert_eq!(seq.checks, ws.checks);
        prop_assert_eq!(&seq.levels, &ws.levels);
        prop_assert_eq!(&seq.termination, &ws.termination);
    }

    /// Differential: with a sample covering the whole relation the
    /// sample-first pipeline degenerates to exact discovery — the same
    /// canonical OCD set under every escalation backend, with
    /// byte-identical JSON across backends.
    #[test]
    fn full_sample_pipeline_equals_exact_discovery(rel in small_relation(3, 14), seed in 0u64..500) {
        use ocddiscover::core::approximate::{discover_approximate_with, ApproxConfig};
        use ocddiscover::core::json::approx_result_to_json;
        use ocddiscover::Ocd;
        use std::collections::HashSet;

        let exact = discover(&rel, &DiscoveryConfig {
            column_reduction: false,
            ..DiscoveryConfig::default()
        });
        let exact_set: HashSet<Ocd> = exact.ocds.iter().map(Ocd::canonical).collect();
        let mut json0: Option<String> = None;
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::Rayon(2),
            ParallelMode::WorkStealing(3),
        ] {
            let cfg = ApproxConfig {
                base: DiscoveryConfig { mode, ..DiscoveryConfig::default() },
                sample_rows: Some(rel.num_rows() + 1), // ≥ rows → exhaustive
                epsilon: 0.0,
                seed,
                ..ApproxConfig::default()
            };
            let approx = discover_approximate_with(&rel, &cfg);
            let approx_set: HashSet<Ocd> =
                approx.ocds.iter().map(|a| a.ocd.canonical()).collect();
            prop_assert_eq!(&exact_set, &approx_set, "mode {:?}", mode);
            prop_assert!(approx.approx.as_ref().is_some_and(|s| s.exhaustive));
            let json = approx_result_to_json(&approx, &rel);
            match &json0 {
                None => json0 = Some(json),
                Some(first) => prop_assert_eq!(first, &json, "JSON differs under {:?}", mode),
            }
        }
    }

    /// Differential: a genuinely sampled run (half the rows, ε = 0 so
    /// every surviving candidate escalates) is deterministic for a fixed
    /// seed — identical results and byte-identical JSON whichever
    /// backend runs the escalation wave.
    #[test]
    fn sampled_escalations_deterministic_across_modes(
        rel in small_relation(3, 20),
        seed in 0u64..1000,
    ) {
        use ocddiscover::core::approximate::{discover_approximate_with, ApproxConfig};
        use ocddiscover::core::json::approx_result_to_json;

        let cfg = |mode| ApproxConfig {
            base: DiscoveryConfig { mode, ..DiscoveryConfig::default() },
            sample_rows: Some((rel.num_rows() / 2).max(1)),
            epsilon: 0.0,
            seed,
            ..ApproxConfig::default()
        };
        let seq = discover_approximate_with(&rel, &cfg(ParallelMode::Sequential));
        for mode in [ParallelMode::Rayon(2), ParallelMode::WorkStealing(3)] {
            let par = discover_approximate_with(&rel, &cfg(mode));
            prop_assert_eq!(&seq.ocds, &par.ocds, "mode {:?}", mode);
            prop_assert_eq!(&seq.ods, &par.ods, "mode {:?}", mode);
            prop_assert_eq!(seq.checks, par.checks, "mode {:?}", mode);
            prop_assert_eq!(
                approx_result_to_json(&seq, &rel),
                approx_result_to_json(&par, &rel),
                "JSON differs under {:?}", mode
            );
        }
    }

    /// Differential under a random `max_checks` budget: the deterministic
    /// per-branch allowances make the truncated partial results identical
    /// between `Sequential` and `WorkStealing(n)` too.
    #[test]
    fn workstealing_budget_partials_equal_sequential(
        rel in small_relation(4, 12),
        workers in 1usize..5,
        cap in 1u64..300,
    ) {
        let base = DiscoveryConfig { max_checks: Some(cap), ..DiscoveryConfig::default() };
        let seq = discover(&rel, &base);
        let ws = discover(&rel, &DiscoveryConfig {
            mode: ParallelMode::WorkStealing(workers),
            ..base
        });
        prop_assert_eq!(&seq.ocds, &ws.ocds);
        prop_assert_eq!(&seq.ods, &ws.ods);
        prop_assert_eq!(seq.checks, ws.checks);
        prop_assert_eq!(&seq.termination, &ws.termination);
    }

    /// Theorem 4.1 as a data property: `XY → YX` valid iff `YX → XY` valid.
    #[test]
    fn theorem_4_1_holds(rel in small_relation(2, 14)) {
        let x = AttrList::single(0);
        let y = AttrList::single(1);
        let xy = x.concat(&y);
        let yx = y.concat(&x);
        prop_assert_eq!(
            check_od(&rel, &xy, &yx).is_valid(),
            check_od(&rel, &yx, &xy).is_valid()
        );
    }

    /// Normalization (AX3) is semantics-preserving: a list and its
    /// normalized form are order equivalent on every instance.
    #[test]
    fn normalization_preserves_order(rel in small_relation(3, 10), ids in prop::collection::vec(0usize..3, 1..5)) {
        let list = AttrList::from(ids);
        let norm = list.normalized();
        prop_assert!(check_od_pairwise(&rel, &list, &norm));
        prop_assert!(check_od_pairwise(&rel, &norm, &list));
    }

    /// Value parsing never loses the total order: codes mirror values.
    #[test]
    fn rank_codes_mirror_value_order(vals in prop::collection::vec(prop::option::of(-50i64..50), 1..30)) {
        let values: Vec<Value> = vals.iter().map(|v| match v {
            Some(i) => Value::Int(*i),
            None => Value::Null,
        }).collect();
        let rel = Relation::from_columns(vec![("a".to_string(), values.clone())]).unwrap();
        for i in 0..values.len() {
            for j in 0..values.len() {
                prop_assert_eq!(
                    values[i].cmp(&values[j]),
                    rel.code(i, 0).cmp(&rel.code(j, 0))
                );
            }
        }
    }

    /// `head(n)` never invents dependencies that the checker would reject:
    /// an OD valid on the full relation is valid on every prefix.
    #[test]
    fn ods_survive_row_removal(rel in small_relation(2, 16), keep in 1usize..16) {
        let x = AttrList::single(0);
        let y = AttrList::single(1);
        if check_od(&rel, &x, &y).is_valid() {
            let head = rel.head(keep.min(rel.num_rows()));
            prop_assert!(check_od(&head, &x, &y).is_valid());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bidirectional checks are invariant under the global polarity flip.
    #[test]
    fn bidi_global_flip_invariance(rel in small_relation(3, 12)) {
        use ocddiscover::core::bidirectional::{check_bidi_od, Direction, Mark, MarkedList};
        for d0 in [Direction::Asc, Direction::Desc] {
            for d1 in [Direction::Asc, Direction::Desc] {
                let x = MarkedList::single(Mark { column: 0, direction: d0 });
                let y = MarkedList::from_marks(vec![
                    Mark { column: 1, direction: d1 },
                    Mark { column: 2, direction: d0 },
                ]);
                prop_assert_eq!(
                    check_bidi_od(&rel, &x, &y).is_valid(),
                    check_bidi_od(&rel, &x.flipped(), &y.flipped()).is_valid()
                );
            }
        }
    }

    /// All-ascending bidirectional checks agree with the unidirectional
    /// checker on every list pair.
    #[test]
    fn bidi_asc_matches_unidirectional(rel in small_relation(3, 12)) {
        use ocddiscover::core::bidirectional::{check_bidi_od, Mark, MarkedList};
        let lists = all_lists(&[0, 1, 2], 2);
        for x in &lists {
            for y in &lists {
                let mx = MarkedList::from_marks(
                    x.as_slice().iter().map(|&c| Mark::asc(c)).collect(),
                );
                let my = MarkedList::from_marks(
                    y.as_slice().iter().map(|&c| Mark::asc(c)).collect(),
                );
                prop_assert_eq!(
                    check_bidi_od(&rel, &mx, &my).is_valid(),
                    check_od(&rel, x, y).is_valid(),
                    "lists {} -> {}", x, y
                );
            }
        }
    }

    /// The approximate error is zero exactly when the checker validates,
    /// and removal witnesses always repair the dependency.
    #[test]
    fn approx_error_and_witnesses_consistent(rel in small_relation(2, 14)) {
        use ocddiscover::core::approximate::{od_error, removal_witnesses};
        let x = AttrList::single(0);
        let y = AttrList::single(1);
        let err = od_error(&rel, &x, &y);
        prop_assert_eq!(err.is_exact(), check_od(&rel, &x, &y).is_valid());

        let witnesses = removal_witnesses(&rel, &x, &y);
        let keep: Vec<usize> = (0..rel.num_rows())
            .filter(|r| !witnesses.contains(&(*r as u32)))
            .collect();
        let repaired = Relation::from_columns(
            (0..rel.num_columns())
                .map(|c| {
                    (
                        format!("c{c}"),
                        keep.iter().map(|&r| rel.value(r, c).clone()).collect(),
                    )
                })
                .collect(),
        ).unwrap();
        prop_assert!(check_od(&repaired, &x, &y).is_valid());
    }

    /// Sorted-partition checking agrees with the sort-based checker.
    #[test]
    fn partition_checker_agrees(rel in small_relation(3, 12)) {
        use ocddiscover::core::sorted_partitions::PartitionChecker;
        let mut checker = PartitionChecker::new(&rel);
        let lists = all_lists(&[0, 1, 2], 2);
        for x in &lists {
            for y in &lists {
                prop_assert_eq!(
                    checker.check_od(x, y).is_valid(),
                    check_od(&rel, x, y).is_valid(),
                    "lists {} -> {}", x, y
                );
            }
        }
    }
}

/// Build a 4-column relation from flat rows, reducing values modulo
/// `domain` so one strategy covers near-constant, narrow and near-key
/// columns (and with them all three sort kernels: counting, packed radix,
/// chained refinement).
fn relation_mod_domain(rows: &[Vec<i64>], domain: i64) -> Relation {
    let cols = rows.first().map_or(0, |r| r.len());
    let mut columns: Vec<(String, Vec<Value>)> =
        (0..cols).map(|c| (format!("c{c}"), Vec::new())).collect();
    for row in rows {
        for (c, &v) in row.iter().enumerate() {
            // Vary the effective domain per column: c0 gets the full range,
            // later columns get progressively narrower ones.
            let d = (domain >> (2 * c)).max(1);
            columns[c].1.push(Value::Int(v % d));
        }
    }
    Relation::from_columns(columns).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The distribution-based sort kernels (counting / packed radix /
    /// chained counting refinement) agree with the comparator oracle on
    /// every attribute list, including duplicates, across domain widths.
    #[test]
    fn sort_kernels_match_comparator_oracle(
        domain in 1i64..60_000,
        rows in prop::collection::vec(prop::collection::vec(0i64..1_000_000, 4usize..=4), 1..40)
    ) {
        use ocddiscover::relation::sort::{sort_index_by, sort_index_by_comparator};
        let rel = relation_mod_domain(&rows, domain);
        for cols in [
            vec![0usize], vec![3], vec![1, 0], vec![2, 1, 0],
            vec![0, 1, 2, 3], vec![1, 1, 2],
        ] {
            prop_assert_eq!(
                sort_index_by(&rel, &cols),
                sort_index_by_comparator(&rel, &cols),
                "cols {:?}", cols
            );
        }
    }

    /// Counting-sort refinement of a prefix-sorted index agrees with the
    /// per-run comparator refinement oracle.
    #[test]
    fn refine_kernels_match_comparator_oracle(
        domain in 1i64..60_000,
        rows in prop::collection::vec(prop::collection::vec(0i64..1_000_000, 4usize..=4), 1..40)
    ) {
        use ocddiscover::relation::sort::{
            refine_index, refine_index_comparator, sort_index_by,
        };
        let rel = relation_mod_domain(&rows, domain);
        let base = sort_index_by(&rel, &[2]);
        for cols in [vec![0usize], vec![0, 1], vec![3, 1], vec![3, 0, 1]] {
            prop_assert_eq!(
                refine_index(&rel, &base, &[2], &cols),
                refine_index_comparator(&rel, &base, &[2], &cols),
                "cols {:?}", cols
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint/resume differential (DESIGN.md §13): on arbitrary
    /// relations, resuming from *any* level-boundary dump reproduces the
    /// uninterrupted result exactly — dependencies, check counts, per-level
    /// stats and termination — whether the resume runs sequentially or on
    /// the work-stealing backend. Checkpointing itself must also leave the
    /// discovered set untouched.
    #[test]
    fn resume_from_any_boundary_equals_uninterrupted(
        rel in small_relation(4, 12),
        workers in 1usize..4,
    ) {
        use ocddiscover::core::list_snapshots;
        use ocddiscover::{discover_resume, read_snapshot, CheckpointPolicy};
        use std::sync::atomic::{AtomicUsize, Ordering};

        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("ocdd-resume-prop-{}-{case}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let mut policy = CheckpointPolicy::new(&dir);
        policy.keep_last = 0; // retain every boundary
        policy.delete_on_complete = false;

        let full = discover(&rel, &DiscoveryConfig::default());
        let ckpt = discover(&rel, &DiscoveryConfig {
            checkpoint: Some(policy),
            ..DiscoveryConfig::default()
        });
        prop_assert_eq!(&full.ods, &ckpt.ods, "checkpointing changed the result");
        prop_assert_eq!(&full.ocds, &ckpt.ocds, "checkpointing changed the result");
        prop_assert!(
            ckpt.checkpoint.as_ref().is_some_and(|s| s.write_errors == 0),
            "dumps must all land: {:?}", ckpt.checkpoint
        );

        let configs = [
            DiscoveryConfig::default(),
            DiscoveryConfig {
                mode: ParallelMode::WorkStealing(workers),
                ..DiscoveryConfig::default()
            },
        ];
        for dump in list_snapshots(&dir, None).unwrap() {
            let snap = read_snapshot(&dump).unwrap();
            for config in &configs {
                let resumed = discover_resume(&rel, config, &snap).unwrap();
                let tag = format!("level {}/{:?}", snap.level, config.mode);
                prop_assert_eq!(&full.ocds, &resumed.ocds, "{}: OCDs differ", tag);
                prop_assert_eq!(&full.ods, &resumed.ods, "{}: ODs differ", tag);
                prop_assert_eq!(&full.constants, &resumed.constants, "{}", tag);
                prop_assert_eq!(
                    &full.equivalence_classes, &resumed.equivalence_classes,
                    "{}", tag
                );
                prop_assert_eq!(full.checks, resumed.checks, "{}: checks differ", tag);
                prop_assert_eq!(&full.levels, &resumed.levels, "{}", tag);
                prop_assert_eq!(&full.termination, &resumed.termination, "{}", tag);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
