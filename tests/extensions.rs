//! Integration tests for the beyond-the-paper extensions: bidirectional
//! ODs, approximate ODs, incremental discovery and the ORDER BY rewriter,
//! exercised on the datasets crate.

use ocddiscover::core::approximate::{discover_approximate, od_error};
use ocddiscover::core::bidirectional::{
    check_bidi_od, discover_bidirectional, Direction, Mark, MarkedList,
};
use ocddiscover::core::incremental::IncrementalDiscovery;
use ocddiscover::core::rewrite::{simplify_with_data, simplify_with_result};
use ocddiscover::datasets::paper::tax_table;
use ocddiscover::datasets::{ColumnSpec, Dataset, RowScale, TableSpec};
use ocddiscover::{discover, AttrList, DiscoveryConfig, Relation, Value};

#[test]
fn bidirectional_finds_rank_vs_score() {
    // A leaderboard: higher score = lower (better) rank.
    let score: Vec<i64> = vec![910, 850, 850, 720, 600];
    let rank: Vec<i64> = vec![1, 2, 2, 4, 5];
    let rel = Relation::from_columns(vec![
        ("score".into(), score.into_iter().map(Value::Int).collect()),
        ("rank".into(), rank.into_iter().map(Value::Int).collect()),
    ])
    .unwrap();

    // The unidirectional algorithm sees nothing but swaps…
    let uni = discover(&rel, &DiscoveryConfig::default());
    assert!(uni.ocds.is_empty() && uni.equivalence_classes.is_empty());

    // …the bidirectional one collapses score↑ <-> rank↓.
    let bidi = discover_bidirectional(&rel, &DiscoveryConfig::default());
    assert_eq!(bidi.equivalence_classes.len(), 1);
    let class = &bidi.equivalence_classes[0];
    assert!(class.contains(&Mark::asc(0)) && class.contains(&Mark::desc(1)));
}

#[test]
fn bidirectional_on_lineitem_dates() {
    // Derived column: days_until_ship = constant - shipdate would be the
    // clean case; here we just check the checker on a planted pair.
    let rel = TableSpec::new(
        vec![
            ("ship", ColumnSpec::Key),
            (
                "remaining",
                ColumnSpec::EquivalentTo {
                    source: 0,
                    scale: 1,
                    offset: 0,
                },
            ),
        ],
        50,
    )
    .generate(3);
    // Negate "remaining" by checking the descending direction instead.
    let ship_up = MarkedList::single(Mark::asc(0));
    let rem_down = MarkedList::single(Mark {
        column: 1,
        direction: Direction::Desc,
    });
    // ship and remaining are equivalent ascending, so ship↑ -> remaining↓
    // must NOT hold (it inverts), while ship↑ -> remaining↑ must.
    assert!(!check_bidi_od(&rel, &ship_up, &rem_down).is_valid());
    assert!(check_bidi_od(&rel, &ship_up, &MarkedList::single(Mark::asc(1))).is_valid());
}

#[test]
fn approximate_survives_dirty_data() {
    // Take the tax table's income -> bracket and corrupt one row.
    let rel = tax_table();
    let income = rel.column_id("income").unwrap();
    let bracket = rel.column_id("bracket").unwrap();
    assert!(od_error(&rel, &AttrList::single(income), &AttrList::single(bracket)).is_exact());

    // Corrupt: append a high-income row misfiled into bracket 1.
    let mut cols: Vec<(String, Vec<Value>)> = (0..rel.num_columns())
        .map(|c| {
            (
                rel.meta(c).name.clone(),
                (0..rel.num_rows())
                    .map(|r| rel.value(r, c).clone())
                    .collect(),
            )
        })
        .collect();
    cols[0].1.push(Value::Str("X. Err".into()));
    cols[income].1.push(Value::Int(95_000));
    cols[2].1.push(Value::Int(11_000)); // savings
    cols[bracket].1.push(Value::Int(1)); // misfiled!
    cols[4].1.push(Value::Int(15_000)); // tax
    let dirty = Relation::from_columns(cols).unwrap();

    let err = od_error(
        &dirty,
        &AttrList::single(income),
        &AttrList::single(bracket),
    );
    assert!(!err.is_exact());
    assert_eq!(err.swap_removals, 1);
    // One bad row out of seven: ε = 0.15 tolerates it.
    assert!(err.holds_at(0.15));

    let approx = discover_approximate(&dirty, &DiscoveryConfig::default(), 0.15);
    assert!(approx
        .ods
        .iter()
        .any(|od| od.lhs == AttrList::single(income) && od.rhs == AttrList::single(bracket)));
}

#[test]
fn incremental_matches_batch_on_generated_streams() {
    let base = Dataset::Ncvoter1k.generate(RowScale::Rows(120));
    let grown = Dataset::Ncvoter1k.generate(RowScale::Rows(160));
    // Feed rows 120..160 of the larger instance as appended batches.
    let inc = IncrementalDiscovery::new(&base, DiscoveryConfig::default());
    // Note: base and grown share a generator seed but sorted-backbone
    // columns differ between sizes, so rebuild batches from `grown`'s tail
    // against `grown`'s head to keep a consistent stream.
    let head = grown.head(120);
    let mut inc2 = IncrementalDiscovery::new(&head, DiscoveryConfig::default());
    let batch: Vec<Vec<Value>> = (120..160)
        .map(|r| {
            (0..grown.num_columns())
                .map(|c| grown.value(r, c).clone())
                .collect()
        })
        .collect();
    inc2.append_rows(batch).unwrap();
    let fresh = discover(inc2.relation(), &DiscoveryConfig::default());
    assert_eq!(inc2.result().ocds, fresh.ocds);
    assert_eq!(inc2.result().ods, fresh.ods);
    assert_eq!(inc2.result().constants, fresh.constants);
    assert_eq!(inc2.result().equivalence_classes, fresh.equivalence_classes);
    drop(inc);
}

#[test]
fn incremental_resume_recovers_unpruned_children() {
    // Construct data where a -> b holds initially (so [aX] ~ [b] subtrees
    // are pruned by Theorem 3.9) and is later broken by an append, making
    // a longer OCD minimal.
    let rel = Relation::from_columns(vec![
        (
            "a".into(),
            vec![1, 2, 3, 4].into_iter().map(Value::Int).collect(),
        ),
        (
            "b".into(),
            vec![1, 1, 2, 2].into_iter().map(Value::Int).collect(),
        ),
        (
            "c".into(),
            vec![1, 2, 1, 2].into_iter().map(Value::Int).collect(),
        ),
    ])
    .unwrap();
    let mut inc = IncrementalDiscovery::new(&rel, DiscoveryConfig::default());
    assert!(inc
        .result()
        .ods
        .iter()
        .any(|od| od.to_string() == "[0] -> [1]"));

    // Append a row breaking a -> b via a split: a ties at 4, b differs.
    let delta = inc
        .append_rows(vec![vec![Value::Int(4), Value::Int(3), Value::Int(3)]])
        .unwrap();
    assert!(delta
        .invalidated_ods
        .iter()
        .any(|od| od.to_string() == "[0] -> [1]"));
    // The incremental state must equal a fresh batch run, including any
    // dependencies that became minimal after the prune lifted.
    let fresh = discover(inc.relation(), &DiscoveryConfig::default());
    assert_eq!(inc.result().ocds, fresh.ocds);
    assert_eq!(inc.result().ods, fresh.ods);
}

#[test]
fn rewriter_agrees_between_data_and_catalogue_on_datasets() {
    for &ds in &[Dataset::Dbtesma1k, Dataset::Ncvoter1k] {
        let rel = ds.generate(RowScale::Rows(300));
        let result = discover(&rel, &DiscoveryConfig::default());
        // Simplify a clause over the first 5 columns.
        let keys: Vec<usize> = (0..5.min(rel.num_columns())).collect();
        let by_data = simplify_with_data(&rel, &keys);
        let by_result = simplify_with_result(&result, &keys);
        // The catalogue-backed rewrite is at most as aggressive as the
        // data-backed one, and everything it drops the data confirms.
        for (col, _) in &by_result.dropped {
            assert!(
                by_data.dropped.iter().any(|(c, _)| c == col),
                "{}: catalogue dropped {col} but data does not justify it",
                ds.name()
            );
        }
    }
}

#[test]
fn approximate_epsilon_monotone() {
    // Larger tolerance can only find more (or equal) dependencies *per
    // candidate*. The total count across the whole tree is NOT monotone in
    // epsilon: when a loose run validates an OD direction it prunes that
    // side's children (Theorem 3.9), children the tight run explores and
    // may emit OCDs from. Level 2 checks the same candidate set under both
    // tolerances, so monotonicity is exact there.
    // Level-capped: approximate trees explode fast on quasi-constant data.
    let rel = Dataset::Horse.generate(RowScale::Rows(150));
    let config = DiscoveryConfig {
        max_level: Some(3),
        ..DiscoveryConfig::default()
    };
    let tight = discover_approximate(&rel, &config, 0.0);
    let loose = discover_approximate(&rel, &config, 0.05);
    let level2 = |r: &ocddiscover::core::approximate::ApproximateResult| {
        r.ocds
            .iter()
            .filter(|a| a.ocd.lhs.len() == 1 && a.ocd.rhs.len() == 1)
            .count()
    };
    assert!(level2(&loose) >= level2(&tight));
    // Every exact (level-2) OCD appears among the loose ones.
    for a in tight
        .ocds
        .iter()
        .filter(|a| a.ocd.lhs.len() == 1 && a.ocd.rhs.len() == 1)
    {
        assert!(
            loose
                .ocds
                .iter()
                .any(|b| b.ocd.canonical() == a.ocd.canonical()),
            "{} lost at higher epsilon",
            a.ocd
        );
    }
    // Loose errors never exceed the tolerance they were accepted at.
    for a in &loose.ocds {
        assert!(a.error <= 0.05 + 1e-12, "{}: error {}", a.ocd, a.error);
    }
}
