//! End-to-end tests of the `ocdd` CLI binary.

use std::process::Command;

fn ocdd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ocdd"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn list_shows_all_datasets() {
    let out = ocdd(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in [
        "dbtesma",
        "flight_1k",
        "hepatitis",
        "horse",
        "letter",
        "lineitem",
        "yes",
        "no",
        "numbers",
    ] {
        assert!(text.contains(name), "missing {name} in list output");
    }
}

#[test]
fn dataset_emits_csv() {
    let out = ocdd(&["dataset", "yes"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "A,B\n1,1\n1,2\n2,2\n2,3\n3,3\n");
}

#[test]
fn dataset_rows_flag_truncates() {
    let out = ocdd(&["dataset", "hepatitis", "--rows", "7"]);
    assert!(out.status.success());
    // Header plus 7 rows.
    assert_eq!(stdout(&out).lines().count(), 8);
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = ocdd(&["dataset", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn profile_pipeline_finds_dependencies() {
    let dir = std::env::temp_dir().join("ocdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p.csv");
    std::fs::write(&path, "a,b,c\n1,10,5\n2,20,5\n3,30,5\n").unwrap();
    let out = ocdd(&["profile", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("constant    c"), "got: {text}");
    assert!(text.contains("equivalent  a <-> b"), "got: {text}");
    assert!(text.contains("complete"));
}

#[test]
fn profile_every_algorithm_runs() {
    let dir = std::env::temp_dir().join("ocdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("algos.csv");
    std::fs::write(&path, "a,b\n1,1\n1,2\n2,2\n2,3\n3,3\n").unwrap();
    for algo in ["ocdd", "order", "fastod", "tane", "bidi", "approx"] {
        let out = ocdd(&["profile", path.to_str().unwrap(), "--algo", algo]);
        assert!(out.status.success(), "algo {algo} failed: {:?}", out);
    }
}

#[test]
fn simplify_drops_redundant_keys() {
    let dir = std::env::temp_dir().join("ocdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.csv");
    std::fs::write(&path, "x,y\n1,10\n2,20\n3,30\n").unwrap();
    let out = ocdd(&["simplify", path.to_str().unwrap(), "--order-by", "x,y"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("simplified: ORDER BY x"), "got: {text}");
    assert!(text.contains("dropped y"));
}

#[test]
fn missing_arguments_print_usage() {
    let out = ocdd(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn dataset_round_trips_through_profile() {
    // `ocdd dataset numbers` piped back through `ocdd profile` (via file).
    let csv = stdout(&ocdd(&["dataset", "numbers"]));
    let dir = std::env::temp_dir().join("ocdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("n.csv");
    std::fs::write(&path, csv).unwrap();
    let out = ocdd(&["profile", path.to_str().unwrap(), "--show-table"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("6×5"));
    assert!(text.contains("ocd"));
}

#[test]
fn profile_json_output_is_machine_readable() {
    let dir = std::env::temp_dir().join("ocdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("j.csv");
    std::fs::write(&path, "a,b\n1,10\n2,20\n3,30\n").unwrap();
    let out = ocdd(&["profile", path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "got: {text}"
    );
    assert!(
        text.contains("\"equivalence_classes\":[[\"a\",\"b\"]]"),
        "got: {text}"
    );
}
