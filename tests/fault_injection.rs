//! End-to-end fault-injection tests through the public facade.
//!
//! Compiled only with `--features fault-injection`; `ci.sh` runs them both
//! plainly and once under `RUST_BACKTRACE=1` as a stress iteration. The
//! in-crate unit tests (`ocdd-core::search`) cover the quarantine algebra
//! in detail — these tests pin down the *public* contract: a faulty or
//! cancelled run returns a well-formed `DiscoveryResult` whose dependencies
//! are a sound subset of the fault-free run, never a crash.

#![cfg(feature = "fault-injection")]

use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::{
    discover, DiscoveryConfig, FaultPlan, ParallelMode, RunController, TerminationReason,
};
use std::sync::Arc;
use std::time::Duration;

fn branch_of(ocd: &ocddiscover::Ocd) -> (usize, usize) {
    (ocd.lhs.as_slice()[0], ocd.rhs.as_slice()[0])
}

/// A panic injected into one level-2 branch of a `StaticQueues(4)` run is
/// quarantined: the run reports `WorkerFailure` naming exactly that branch
/// and loses only dependencies rooted in it.
#[test]
fn branch_panic_is_quarantined_behind_the_facade() {
    let rel = Dataset::Hepatitis.generate(RowScale::Rows(120));
    let config = DiscoveryConfig {
        mode: ParallelMode::StaticQueues(4),
        ..DiscoveryConfig::default()
    };
    let clean = discover(&rel, &config);
    assert!(clean.complete());
    let branch = branch_of(clean.ocds.first().expect("hepatitis has OCDs"));

    let mut plan = FaultPlan::default();
    plan.panic_on_branch = Some(branch);
    let faulty = discover(
        &rel,
        &DiscoveryConfig {
            fault: Some(Arc::new(plan)),
            ..config
        },
    );
    match &faulty.termination {
        TerminationReason::WorkerFailure { branches, message } => {
            assert_eq!(branches.as_slice(), &[branch]);
            assert!(message.contains("injected panic"), "got {message:?}");
        }
        other => panic!("expected WorkerFailure, got {other:?}"),
    }
    assert!(!faulty.complete());
    // Exactly the clean OCD set minus the quarantined branch.
    let expected: Vec<_> = clean
        .ocds
        .iter()
        .filter(|o| branch_of(o) != branch)
        .cloned()
        .collect();
    assert_eq!(faulty.ocds, expected);
    // ODs degrade to a sound subset (reduction-derived single ODs that
    // share a quarantined root survive).
    assert!(faulty.ods.iter().all(|od| clean.ods.contains(od)));
    assert_eq!(faulty.constants, clean.constants);
    assert_eq!(faulty.equivalence_classes, clean.equivalence_classes);
}

/// Cancelling via a shared `RunController` from another thread stops the
/// run with `TerminationReason::Cancelled` and a well-formed partial
/// result.
#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let rel = Dataset::Dbtesma1k.generate(RowScale::Rows(400));
    let controller = RunController::new();
    let remote = controller.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        remote.cancel();
    });
    let res = discover(
        &rel,
        &DiscoveryConfig {
            mode: ParallelMode::StaticQueues(4),
            controller: Some(controller),
            // Failsafe so a missed cancellation cannot hang the test.
            time_budget: Some(Duration::from_secs(30)),
            ..DiscoveryConfig::default()
        },
    );
    canceller.join().expect("canceller thread");
    // Either the search finished in under 5 ms (tiny machine timing) or it
    // observed the cancellation; it must never report a time budget.
    assert_ne!(res.termination, TerminationReason::TimeBudget);
    if res.termination == TerminationReason::Cancelled {
        assert!(!res.complete());
    }
    res.ocds.windows(2).for_each(|w| assert!(w[0] <= w[1]));
}

/// Injected per-check latency trips the wall-clock budget with a typed
/// `TimeBudget` termination instead of running unbounded.
#[test]
fn injected_latency_degrades_to_time_budget() {
    let rel = Dataset::Hepatitis.generate(RowScale::Rows(120));
    let mut plan = FaultPlan::default();
    plan.check_delay = Some(Duration::from_millis(2));
    let res = discover(
        &rel,
        &DiscoveryConfig {
            time_budget: Some(Duration::from_millis(5)),
            fault: Some(Arc::new(plan)),
            ..DiscoveryConfig::default()
        },
    );
    assert_eq!(res.termination, TerminationReason::TimeBudget);
    assert!(!res.complete());
    let clean = discover(&rel, &DiscoveryConfig::default());
    assert!(res.ocds.iter().all(|o| clean.ocds.contains(o)));
}

/// A panic injected into a `WorkStealing` run is quarantined exactly like
/// the other modes: the run reports `WorkerFailure` naming the branch, and
/// the surviving branches match the fault-free run — even though batches
/// execute speculatively on stealing workers.
#[test]
fn workstealing_branch_panic_is_quarantined() {
    let rel = Dataset::Hepatitis.generate(RowScale::Rows(120));
    for workers in [1, 4] {
        let config = DiscoveryConfig {
            mode: ParallelMode::WorkStealing(workers),
            ..DiscoveryConfig::default()
        };
        let clean = discover(&rel, &config);
        assert!(clean.complete());
        let branch = branch_of(clean.ocds.first().expect("hepatitis has OCDs"));

        let mut plan = FaultPlan::default();
        plan.panic_on_branch = Some(branch);
        let faulty = discover(
            &rel,
            &DiscoveryConfig {
                fault: Some(Arc::new(plan)),
                ..config
            },
        );
        match &faulty.termination {
            TerminationReason::WorkerFailure { branches, .. } => {
                assert_eq!(branches.as_slice(), &[branch], "ws({workers})");
            }
            other => panic!("ws({workers}): expected WorkerFailure, got {other:?}"),
        }
        let expected: Vec<_> = clean
            .ocds
            .iter()
            .filter(|o| branch_of(o) != branch)
            .cloned()
            .collect();
        assert_eq!(faulty.ocds, expected, "ws({workers})");
        assert!(faulty.ods.iter().all(|od| clean.ods.contains(od)));
    }
}

/// A cache under a permanent eviction storm is a pure performance
/// degradation: results are identical to the fault-free run. Covers both
/// the lock-striped (`StaticQueues`) and epoch-published (`WorkStealing`)
/// shared-cache designs.
#[test]
fn eviction_storm_is_result_neutral() {
    let rel = Dataset::Hepatitis.generate(RowScale::Rows(120));
    for mode in [ParallelMode::StaticQueues(3), ParallelMode::WorkStealing(3)] {
        let config = DiscoveryConfig {
            mode,
            checker: ocddiscover::CheckerBackend::PrefixCache,
            shared_cache: true,
            ..DiscoveryConfig::default()
        };
        let clean = discover(&rel, &config);
        let mut plan = FaultPlan::default();
        plan.drop_cache_inserts = true;
        let stormy = discover(
            &rel,
            &DiscoveryConfig {
                fault: Some(Arc::new(plan)),
                ..config
            },
        );
        assert_eq!(clean.ocds, stormy.ocds, "{mode:?}");
        assert_eq!(clean.ods, stormy.ods, "{mode:?}");
        assert_eq!(clean.checks, stormy.checks, "{mode:?}");
        assert_eq!(stormy.termination, TerminationReason::Complete, "{mode:?}");
    }
}

/// A value whose weight probe can be told to panic — simulates a fault in
/// the middle of an epoch publish, after some inserts are already merged
/// into the candidate map.
struct Weighted {
    bytes: usize,
    panic_on_weigh: bool,
}

impl ocddiscover::core::shared_cache::CacheWeight for Weighted {
    fn weight_bytes(&self) -> usize {
        if self.panic_on_weigh {
            panic!("injected mid-publish fault");
        }
        self.bytes
    }
}

/// The epoch cache's publish protocol is all-or-nothing: a panic halfway
/// through merging a batch (here: while weighing the second of three
/// inserts) unwinds before the snapshot swap, so readers keep seeing
/// exactly the pre-publish snapshot — never a torn one — and the poisoned
/// lock is recovered on the next access.
#[test]
fn epoch_publish_is_all_or_nothing_under_mid_publish_panic() {
    use ocddiscover::core::shared_cache::EpochPrefixCache;

    let cache: EpochPrefixCache<Weighted> = EpochPrefixCache::new(1 << 20);
    cache.publish(vec![(
        vec![0],
        Arc::new(Weighted {
            bytes: 64,
            panic_on_weigh: false,
        }),
    )]);
    assert_eq!(cache.snapshot().len(), 1);

    let cache = Arc::new(cache);
    let c2 = Arc::clone(&cache);
    std::thread::spawn(move || {
        c2.publish(vec![
            (
                vec![1],
                Arc::new(Weighted {
                    bytes: 64,
                    panic_on_weigh: false,
                }),
            ),
            (
                vec![2],
                Arc::new(Weighted {
                    bytes: 64,
                    panic_on_weigh: true,
                }),
            ),
            (
                vec![3],
                Arc::new(Weighted {
                    bytes: 64,
                    panic_on_weigh: false,
                }),
            ),
        ]);
    })
    .join()
    .unwrap_err();

    // The swap never ran: the pre-publish snapshot is intact, including
    // the insert that *had* already merged into the abandoned candidate
    // map, and the cache keeps accepting publishes afterwards.
    let after = cache.snapshot();
    assert_eq!(after.len(), 1);
    assert!(after.get(&[0]).is_some());
    assert!(after.get(&[1]).is_none());
    assert!(after.get(&[2]).is_none());
    assert!(after.get(&[3]).is_none());

    cache.publish(vec![(
        vec![4],
        Arc::new(Weighted {
            bytes: 64,
            panic_on_weigh: false,
        }),
    )]);
    let healed = cache.snapshot();
    assert_eq!(healed.len(), 2);
    assert!(healed.get(&[4]).is_some());
}
