//! Soundness and completeness of OCDDISCOVER against brute force.
//!
//! * **Soundness**: every emitted OCD/OD holds on the instance by the
//!   pairwise Definitions 2.2/2.4.
//! * **Completeness** (Theorem 3.5 + pruning rules): every brute-forced
//!   minimal OCD is *accounted for* — either discovered directly (modulo
//!   order-equivalence substitution and commutativity), or derivable from a
//!   discovered OD via the Theorem 3.9 pruning rule (`U → V ⟹ UZ ~ V`),
//!   or trivial because it touches constant columns.

use ocddiscover::core::brute::{brute_force_minimal_ocds, brute_force_ods};
use ocddiscover::core::check::check_od_pairwise;
use ocddiscover::{discover, AttrList, DiscoveryConfig, DiscoveryResult, Ocd, Relation, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

fn random_relation(seed: u64, rows: usize, cols: usize, domain: i64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_columns(
        (0..cols)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..rows)
                        .map(|_| Value::Int(rng.random_range(0..domain)))
                        .collect(),
                )
            })
            .collect(),
    )
    .unwrap()
}

/// Map every attribute of `list` to its equivalence-class representative.
fn to_reps(list: &AttrList, result: &DiscoveryResult) -> AttrList {
    let rep = |a: usize| -> usize {
        for class in &result.equivalence_classes {
            if class.contains(&a) {
                return class[0];
            }
        }
        a
    };
    AttrList::from(list.as_slice().iter().map(|&a| rep(a)).collect::<Vec<_>>())
}

/// Whether a brute-forced minimal OCD is accounted for by the discovery
/// result (see module docs).
fn accounted_for(ocd: &Ocd, result: &DiscoveryResult) -> bool {
    // Constants make any OCD touching them derivable.
    let touches_constant = ocd
        .lhs
        .as_slice()
        .iter()
        .chain(ocd.rhs.as_slice())
        .any(|a| result.constants.contains(a));
    if touches_constant {
        return true;
    }

    let x = to_reps(&ocd.lhs, result).normalized();
    let y = to_reps(&ocd.rhs, result).normalized();
    // After substitution the sides may collide (the OCD reduces to an
    // equivalence fact).
    if !x.is_disjoint(&y) {
        return true;
    }

    let discovered: HashSet<Ocd> = result.ocds.iter().map(Ocd::canonical).collect();
    if discovered.contains(&Ocd::new(x.clone(), y.clone()).canonical()) {
        return true;
    }

    // Theorem 3.9: a discovered OD U -> V implies UZ ~ V. The missing OCD
    // is derivable when one side extends a discovered OD's LHS (as a
    // prefix) and the other side equals its RHS.
    let implied_by_od = |side_a: &AttrList, side_b: &AttrList| {
        result.ods.iter().any(|od| {
            od.rhs == *side_b
                && od.lhs.len() <= side_a.len()
                && side_a.as_slice()[..od.lhs.len()] == *od.lhs.as_slice()
        })
    };
    implied_by_od(&x, &y) || implied_by_od(&y, &x)
}

#[test]
fn soundness_on_random_relations() {
    for seed in 0..25u64 {
        let rel = random_relation(seed, 20, 4, 3);
        let result = discover(&rel, &DiscoveryConfig::default());
        assert!(result.complete());
        for od in &result.ods {
            assert!(
                check_od_pairwise(&rel, &od.lhs, &od.rhs),
                "spurious OD {od} at seed {seed}"
            );
        }
        for ocd in &result.ocds {
            let xy = ocd.lhs.concat(&ocd.rhs);
            let yx = ocd.rhs.concat(&ocd.lhs);
            assert!(
                check_od_pairwise(&rel, &xy, &yx) && check_od_pairwise(&rel, &yx, &xy),
                "spurious OCD {ocd} at seed {seed}"
            );
        }
    }
}

#[test]
fn completeness_on_random_relations() {
    for seed in 0..40u64 {
        let rel = random_relation(seed, 14, 4, 3);
        let result = discover(&rel, &DiscoveryConfig::default());
        let brute = brute_force_minimal_ocds(&rel, 2);
        for ocd in &brute {
            assert!(
                accounted_for(ocd, &result),
                "seed {seed}: minimal OCD {ocd} not accounted for;\n\
                 discovered OCDs: {:?}\n discovered ODs: {:?}\n classes: {:?}",
                result.ocds,
                result.ods,
                result.equivalence_classes
            );
        }
    }
}

#[test]
fn completeness_with_structured_columns() {
    // Relations with planted constants, equivalences and ordered chains —
    // the cases where column reduction and pruning actually fire.
    use ocddiscover::datasets::{ColumnSpec, TableSpec};
    for seed in 0..10u64 {
        let rel = TableSpec::new(
            vec![
                ("a", ColumnSpec::SortedInt { distinct: 5 }),
                (
                    "b",
                    ColumnSpec::CoMonotoneWith {
                        source: 0,
                        distinct: 4,
                    },
                ),
                (
                    "c",
                    ColumnSpec::EquivalentTo {
                        source: 0,
                        scale: 2,
                        offset: 1,
                    },
                ),
                ("k", ColumnSpec::Constant(7)),
            ],
            18,
        )
        .generate(seed);
        let result = discover(&rel, &DiscoveryConfig::default());
        let brute = brute_force_minimal_ocds(&rel, 2);
        for ocd in &brute {
            assert!(
                accounted_for(ocd, &result),
                "seed {seed}: {ocd} not accounted for"
            );
        }
    }
}

#[test]
fn discovered_single_ods_match_brute_force() {
    for seed in 0..25u64 {
        let rel = random_relation(seed, 16, 4, 3);
        let result = discover(&rel, &DiscoveryConfig::default());
        let brute = brute_force_ods(&rel, 1);

        // Every brute single-column OD must be recoverable: directly in the
        // result, via an equivalence class, or via a constant RHS.
        for od in &brute {
            let a = od.lhs.as_slice()[0];
            let b = od.rhs.as_slice()[0];
            let direct = result.ods.contains(od);
            let equiv = result
                .equivalence_classes
                .iter()
                .any(|cl| cl.contains(&a) && cl.contains(&b));
            let const_rhs = result.constants.contains(&b);
            // Substituted: the reps of a, b carry the OD.
            let ra = to_reps(&od.lhs, &result);
            let rb = to_reps(&od.rhs, &result);
            let via_reps = ra == rb || result.ods.iter().any(|o| o.lhs == ra && o.rhs == rb);
            assert!(
                direct || equiv || const_rhs || via_reps,
                "seed {seed}: brute OD {od} unaccounted"
            );
        }
    }
}
