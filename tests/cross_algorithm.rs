//! Cross-algorithm agreement: OCDDISCOVER, ORDER, FASTOD and TANE must
//! tell consistent stories on the same data.

use ocddiscover::baselines::{fastod, order_discover, tane, FastodConfig, OrderConfig, TaneConfig};
use ocddiscover::core::brute::brute_force_minimal_fds;
use ocddiscover::core::check::check_od_pairwise;
use ocddiscover::{discover, DiscoveryConfig, Relation, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

fn random_relation(seed: u64, rows: usize, cols: usize, domain: i64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_columns(
        (0..cols)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..rows)
                        .map(|_| Value::Int(rng.random_range(0..domain)))
                        .collect(),
                )
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn global_singleton_ocds_agree_between_ocdd_and_fastod() {
    for seed in 0..30u64 {
        let rel = random_relation(seed, 15, 4, 3);
        let ours = discover(
            &rel,
            &DiscoveryConfig {
                column_reduction: false,
                ..DiscoveryConfig::default()
            },
        );
        let fast = fastod(&rel, &FastodConfig::default());

        let ours_pairs: HashSet<(usize, usize)> = ours
            .ocds
            .iter()
            .filter(|o| o.lhs.len() == 1 && o.rhs.len() == 1)
            .map(|o| {
                let a = o.lhs.as_slice()[0];
                let b = o.rhs.as_slice()[0];
                (a.min(b), a.max(b))
            })
            .collect();
        let fast_pairs: HashSet<(usize, usize)> = fast
            .ocds
            .iter()
            .filter(|o| o.context.is_empty())
            .map(|o| (o.a, o.b))
            .collect();
        assert_eq!(ours_pairs, fast_pairs, "seed {seed}");
    }
}

#[test]
fn order_ods_are_a_subset_of_valid_ods_and_found_by_ocdd() {
    for seed in 0..20u64 {
        let rel = random_relation(seed, 15, 3, 3);
        let order_res = order_discover(&rel, &OrderConfig::default());
        let ours = discover(
            &rel,
            &DiscoveryConfig {
                column_reduction: false,
                ..DiscoveryConfig::default()
            },
        );
        for od in &order_res.ods {
            // ORDER's output must hold on the data…
            assert!(
                check_od_pairwise(&rel, &od.lhs, &od.rhs),
                "seed {seed}: {od}"
            );
            // …and the single-single ones must be in OCDDISCOVER's output.
            if od.lhs.len() == 1 && od.rhs.len() == 1 {
                assert!(
                    ours.ods.contains(od),
                    "seed {seed}: ORDER found {od} but ocddiscover did not"
                );
            }
        }
    }
}

#[test]
fn ocdd_strictly_dominates_order_in_coverage() {
    // On the YES pattern, OCDDISCOVER finds dependencies ORDER cannot.
    let rel = ocddiscover::datasets::paper::yes_table();
    let order_res = order_discover(&rel, &OrderConfig::default());
    let ours = discover(&rel, &DiscoveryConfig::default());
    assert!(order_res.ods.is_empty());
    assert_eq!(ours.ocd_count(), 1);
}

#[test]
fn tane_matches_brute_force_on_structured_tables() {
    use ocddiscover::datasets::{ColumnSpec, TableSpec};
    for seed in 0..8u64 {
        let rel = TableSpec::new(
            vec![
                ("k", ColumnSpec::Key),
                (
                    "g",
                    ColumnSpec::OrderedBy {
                        source: 0,
                        coarseness: 4,
                    },
                ),
                ("c", ColumnSpec::Constant(1)),
                ("r", ColumnSpec::RandomInt { distinct: 3 }),
            ],
            12,
        )
        .generate(seed);
        let ours: HashSet<(Vec<usize>, usize)> = tane(&rel, &TaneConfig::default())
            .fds
            .into_iter()
            .map(|fd| (fd.lhs, fd.rhs))
            .collect();
        let brute: HashSet<(Vec<usize>, usize)> =
            brute_force_minimal_fds(&rel, 4).into_iter().collect();
        assert_eq!(ours, brute, "seed {seed}");
    }
}

#[test]
fn fastod_fd_side_equals_tane_on_datasets() {
    use ocddiscover::datasets::{Dataset, RowScale};
    let rel = Dataset::Numbers.generate(RowScale::Default);
    let t = tane(&rel, &TaneConfig::default());
    let f = fastod(&rel, &FastodConfig::default());
    assert_eq!(t.fds, f.fds);
    assert!(t.complete && f.complete);
}

#[test]
fn lexicographic_mode_changes_results_consistently() {
    use ocddiscover::relation::TypingMode;
    // 10 vs 9: natural order and lexicographic order disagree.
    let named = vec![
        (
            "a".to_string(),
            vec![Value::Int(9), Value::Int(10), Value::Int(11)],
        ),
        (
            "b".to_string(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        ),
    ];
    let natural = Relation::from_columns_typed(named.clone(), TypingMode::Infer).unwrap();
    let lex = Relation::from_columns_typed(named, TypingMode::ForceLexicographic).unwrap();

    let nat_res = discover(&natural, &DiscoveryConfig::default());
    let lex_res = discover(&lex, &DiscoveryConfig::default());
    // Naturally: a <-> b (both increasing). Lexicographically "10" < "11"
    // < "9", so the equivalence breaks.
    assert_eq!(nat_res.equivalence_classes, vec![vec![0, 1]]);
    assert!(lex_res.equivalence_classes.is_empty());
}
