//! Every execution mode must return exactly the same dependencies, checks
//! and statistics — parallelism may only change wall-clock time.

use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::{discover, DiscoveryConfig, ParallelMode};

fn assert_same_results(ds: Dataset, rows: usize) {
    let rel = ds.generate(RowScale::Rows(rows));
    let seq = discover(&rel, &DiscoveryConfig::default());
    assert!(seq.complete, "{} should complete at {rows} rows", ds.name());
    for mode in [
        ParallelMode::StaticQueues(2),
        ParallelMode::StaticQueues(7),
        ParallelMode::Rayon(3),
    ] {
        let par = discover(
            &rel,
            &DiscoveryConfig {
                mode,
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(
            seq.ocds,
            par.ocds,
            "{}: OCDs differ under {mode:?}",
            ds.name()
        );
        assert_eq!(seq.ods, par.ods, "{}: ODs differ under {mode:?}", ds.name());
        assert_eq!(seq.constants, par.constants);
        assert_eq!(seq.equivalence_classes, par.equivalence_classes);
        assert_eq!(seq.checks, par.checks, "{}: same candidate tree", ds.name());
        assert_eq!(
            seq.candidates_generated,
            par.candidates_generated,
            "{}: same generation count",
            ds.name()
        );
    }
}

#[test]
fn hepatitis_deterministic_across_modes() {
    assert_same_results(Dataset::Hepatitis, 155);
}

#[test]
fn horse_deterministic_across_modes() {
    assert_same_results(Dataset::Horse, 300);
}

#[test]
fn dbtesma_deterministic_across_modes() {
    assert_same_results(Dataset::Dbtesma1k, 500);
}

#[test]
fn ncvoter_deterministic_across_modes() {
    assert_same_results(Dataset::Ncvoter1k, 400);
}

#[test]
fn per_level_stats_agree_across_modes() {
    let rel = Dataset::Horse.generate(RowScale::Rows(200));
    let seq = discover(&rel, &DiscoveryConfig::default());
    let par = discover(
        &rel,
        &DiscoveryConfig {
            mode: ParallelMode::StaticQueues(4),
            ..DiscoveryConfig::default()
        },
    );
    assert_eq!(
        seq.levels, par.levels,
        "per-level stats must merge identically"
    );
}
