//! Every execution mode must return exactly the same dependencies, checks
//! and statistics — parallelism may only change wall-clock time. The same
//! holds for checker backends and the shared prefix cache: they are pure
//! performance knobs.

use ocddiscover::datasets::{Dataset, RowScale};
use ocddiscover::{discover, CheckerBackend, DiscoveryConfig, ParallelMode, TerminationReason};

fn assert_same_results(ds: Dataset, rows: usize) {
    let rel = ds.generate(RowScale::Rows(rows));
    let seq = discover(&rel, &DiscoveryConfig::default());
    assert!(
        seq.complete(),
        "{} should complete at {rows} rows",
        ds.name()
    );
    for mode in [
        ParallelMode::StaticQueues(2),
        ParallelMode::StaticQueues(7),
        ParallelMode::Rayon(3),
        ParallelMode::WorkStealing(1),
        ParallelMode::WorkStealing(4),
    ] {
        let par = discover(
            &rel,
            &DiscoveryConfig {
                mode,
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(
            seq.ocds,
            par.ocds,
            "{}: OCDs differ under {mode:?}",
            ds.name()
        );
        assert_eq!(seq.ods, par.ods, "{}: ODs differ under {mode:?}", ds.name());
        assert_eq!(seq.constants, par.constants);
        assert_eq!(seq.equivalence_classes, par.equivalence_classes);
        assert_eq!(seq.checks, par.checks, "{}: same candidate tree", ds.name());
        assert_eq!(
            seq.candidates_generated,
            par.candidates_generated,
            "{}: same generation count",
            ds.name()
        );
    }
}

#[test]
fn hepatitis_deterministic_across_modes() {
    assert_same_results(Dataset::Hepatitis, 155);
}

#[test]
fn horse_deterministic_across_modes() {
    assert_same_results(Dataset::Horse, 300);
}

#[test]
fn dbtesma_deterministic_across_modes() {
    assert_same_results(Dataset::Dbtesma1k, 500);
}

#[test]
fn ncvoter_deterministic_across_modes() {
    assert_same_results(Dataset::Ncvoter1k, 400);
}

/// The full configuration matrix: every execution mode × checker backend ×
/// shared-cache setting must produce a byte-identical canonical result.
#[test]
fn full_mode_backend_cache_matrix_is_deterministic() {
    let rel = Dataset::Horse.generate(RowScale::Rows(220));
    let baseline = discover(&rel, &DiscoveryConfig::default());
    assert!(baseline.complete());
    for mode in [
        ParallelMode::Sequential,
        ParallelMode::StaticQueues(4),
        ParallelMode::Rayon(4),
        ParallelMode::WorkStealing(4),
    ] {
        for backend in [
            CheckerBackend::Resort,
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            for shared_cache in [false, true] {
                let config = DiscoveryConfig {
                    mode,
                    checker: backend,
                    shared_cache,
                    ..DiscoveryConfig::default()
                };
                let run = discover(&rel, &config);
                let tag = format!("{mode:?}/{backend:?}/shared={shared_cache}");
                assert_eq!(baseline.ocds, run.ocds, "{tag}: OCDs differ");
                assert_eq!(baseline.ods, run.ods, "{tag}: ODs differ");
                assert_eq!(baseline.constants, run.constants, "{tag}");
                assert_eq!(
                    baseline.equivalence_classes, run.equivalence_classes,
                    "{tag}"
                );
                assert_eq!(baseline.checks, run.checks, "{tag}: same candidate tree");
                assert_eq!(
                    baseline.candidates_generated, run.candidates_generated,
                    "{tag}"
                );
                assert_eq!(baseline.levels, run.levels, "{tag}: level stats differ");
                assert_eq!(
                    run.cache.is_some(),
                    shared_cache && backend != CheckerBackend::Resort,
                    "{tag}: cache stats presence"
                );
                assert_eq!(
                    run.scheduler.is_some(),
                    matches!(mode, ParallelMode::WorkStealing(_)),
                    "{tag}: scheduler stats presence"
                );
            }
        }
    }
}

/// A starved shared cache (constant eviction) still changes nothing.
#[test]
fn tiny_shared_cache_budget_matches_baseline() {
    let rel = Dataset::Hepatitis.generate(RowScale::Rows(120));
    let baseline = discover(&rel, &DiscoveryConfig::default());
    for backend in [
        CheckerBackend::PrefixCache,
        CheckerBackend::SortedPartitions,
    ] {
        // Both shared-cache designs: lock-striped (StaticQueues) and
        // epoch-published (WorkStealing).
        for mode in [ParallelMode::StaticQueues(3), ParallelMode::WorkStealing(3)] {
            let run = discover(
                &rel,
                &DiscoveryConfig {
                    mode,
                    checker: backend,
                    shared_cache: true,
                    cache_budget_bytes: 2_048,
                    ..DiscoveryConfig::default()
                },
            );
            assert_eq!(baseline.ocds, run.ocds, "{backend:?}/{mode:?}");
            assert_eq!(baseline.ods, run.ods, "{backend:?}/{mode:?}");
            assert_eq!(baseline.checks, run.checks, "{backend:?}/{mode:?}");
        }
    }
}

/// A `max_checks` budget that trips mid-level must still be deterministic:
/// the budget is split into per-branch allowances in canonical seed order,
/// so every execution mode truncates the search at exactly the same
/// candidates and returns an identical partial result.
#[test]
fn mid_level_check_budget_truncates_identically_across_modes() {
    let rel = Dataset::Horse.generate(RowScale::Rows(220));
    let full = discover(&rel, &DiscoveryConfig::default());
    assert!(full.complete());
    // A budget well inside the search (after reduction, before exhaustion)
    // so several branches run dry mid-traversal.
    let max_checks = full.checks / 3;
    let seq = discover(
        &rel,
        &DiscoveryConfig {
            max_checks: Some(max_checks),
            ..DiscoveryConfig::default()
        },
    );
    assert_eq!(seq.termination, TerminationReason::CheckBudget);
    assert!(!seq.complete());
    assert!(seq.ocds.len() < full.ocds.len(), "budget must truncate");
    assert!(seq.ocds.iter().all(|o| full.ocds.contains(o)));
    for mode in [
        ParallelMode::StaticQueues(2),
        ParallelMode::StaticQueues(5),
        ParallelMode::Rayon(3),
        ParallelMode::WorkStealing(1),
        ParallelMode::WorkStealing(4),
    ] {
        let par = discover(
            &rel,
            &DiscoveryConfig {
                mode,
                max_checks: Some(max_checks),
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(par.termination, TerminationReason::CheckBudget, "{mode:?}");
        assert_eq!(seq.ocds, par.ocds, "partial OCDs differ under {mode:?}");
        assert_eq!(seq.ods, par.ods, "partial ODs differ under {mode:?}");
        assert_eq!(seq.checks, par.checks, "{mode:?}: same truncation point");
        assert_eq!(seq.candidates_generated, par.candidates_generated);
    }
}

/// Rank-code storage width is a pure layout knob: widening every column's
/// codes (u8 → u16 → u32 mirrors of the same ranks) must leave the whole
/// discovery result untouched in every mode × backend combination — the
/// scan kernels may dispatch differently per width, but the dependencies,
/// check counts and witness-driven pruning they produce are identical.
#[test]
fn code_width_sweep_is_deterministic() {
    use ocddiscover::relation::CodeWidth;

    let natural = Dataset::Hepatitis.generate(RowScale::Rows(140));
    let baseline = discover(&natural, &DiscoveryConfig::default());
    assert!(baseline.complete());
    for width in [CodeWidth::U8, CodeWidth::U16, CodeWidth::U32] {
        let mut rel = natural.clone();
        rel.widen_code_width(width);
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::StaticQueues(3),
            ParallelMode::WorkStealing(3),
        ] {
            for backend in [
                CheckerBackend::Resort,
                CheckerBackend::PrefixCache,
                CheckerBackend::SortedPartitions,
            ] {
                let run = discover(
                    &rel,
                    &DiscoveryConfig {
                        mode,
                        checker: backend,
                        ..DiscoveryConfig::default()
                    },
                );
                let tag = format!("{width:?}/{mode:?}/{backend:?}");
                assert_eq!(baseline.ocds, run.ocds, "{tag}: OCDs differ");
                assert_eq!(baseline.ods, run.ods, "{tag}: ODs differ");
                assert_eq!(baseline.constants, run.constants, "{tag}");
                assert_eq!(
                    baseline.equivalence_classes, run.equivalence_classes,
                    "{tag}"
                );
                assert_eq!(baseline.checks, run.checks, "{tag}: same candidate tree");
                assert_eq!(baseline.levels, run.levels, "{tag}: level stats differ");
            }
        }
    }
}

/// Strip the observability-only keys (`elapsed_ms`, `kernels`,
/// `scheduler`, `checkpoint`) from a JSON report, leaving exactly the
/// deterministic result fields. Each key's value is a number or a complete
/// object followed by a comma.
fn strip_observability(json: &str) -> String {
    let mut out = json.to_owned();
    for key in [
        "\"elapsed_ms\":",
        "\"kernels\":",
        "\"scheduler\":",
        "\"checkpoint\":",
    ] {
        while let Some(start) = out.find(key) {
            let rest = &out[start + key.len()..];
            let mut depth = 0i32;
            let mut end = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    ',' if depth == 0 => {
                        end = i + 1;
                        break;
                    }
                    _ => {}
                }
            }
            out.replace_range(start..start + key.len() + end, "");
        }
    }
    out
}

/// Checkpoint/resume sweep: dump every level boundary of a run, then for
/// every boundary k pretend the process died right after it — resuming
/// from the level-k dump must reproduce the uninterrupted run exactly, in
/// every execution mode and both shared-cache settings, down to the JSON
/// report (modulo the observability keys, which track wall-clock and
/// scheduling). The real SIGKILL version of this sweep lives in
/// tests/crash_resume.rs; this one covers the full mode × cache matrix.
#[test]
fn resume_from_every_level_boundary_matches_uninterrupted() {
    use ocddiscover::core::json::result_to_json;
    use ocddiscover::core::list_snapshots;
    use ocddiscover::{discover_resume, read_snapshot, CheckpointPolicy};

    let rel = Dataset::Hepatitis.generate(RowScale::Rows(130));
    let dir = std::env::temp_dir().join(format!("ocdd-resume-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut policy = CheckpointPolicy::new(&dir);
    policy.keep_last = 0; // retain every boundary for the sweep
    policy.delete_on_complete = false;
    let ckpt = discover(
        &rel,
        &DiscoveryConfig {
            checkpoint: Some(policy),
            ..DiscoveryConfig::default()
        },
    );
    assert!(ckpt.complete());
    assert!(
        ckpt.checkpoint
            .as_ref()
            .is_some_and(|s| s.write_errors == 0),
        "dumps must all land: {:?}",
        ckpt.checkpoint
    );

    let dumps = list_snapshots(&dir, None).expect("list dumps");
    assert!(dumps.len() >= 2, "expected several level boundaries");
    for dump in &dumps {
        let snap = read_snapshot(dump).expect("read dump");
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::Rayon(3),
            ParallelMode::WorkStealing(4),
        ] {
            for shared_cache in [false, true] {
                let config = DiscoveryConfig {
                    mode,
                    shared_cache,
                    ..DiscoveryConfig::default()
                };
                let tag = format!("level {}/{mode:?}/shared={shared_cache}", snap.level);
                let full = discover(&rel, &config);
                let resumed = discover_resume(&rel, &config, &snap).expect("resume");
                assert_eq!(full.ocds, resumed.ocds, "{tag}: OCDs differ");
                assert_eq!(full.ods, resumed.ods, "{tag}: ODs differ");
                assert_eq!(full.constants, resumed.constants, "{tag}");
                assert_eq!(
                    full.equivalence_classes, resumed.equivalence_classes,
                    "{tag}"
                );
                assert_eq!(full.checks, resumed.checks, "{tag}: same candidate tree");
                assert_eq!(
                    full.candidates_generated, resumed.candidates_generated,
                    "{tag}"
                );
                assert_eq!(full.levels, resumed.levels, "{tag}: level stats differ");
                assert_eq!(full.termination, resumed.termination, "{tag}");
                assert_eq!(
                    strip_observability(&result_to_json(&full, &rel)),
                    strip_observability(&result_to_json(&resumed, &rel)),
                    "{tag}: JSON reports differ"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_level_stats_agree_across_modes() {
    let rel = Dataset::Horse.generate(RowScale::Rows(200));
    let seq = discover(&rel, &DiscoveryConfig::default());
    for mode in [ParallelMode::StaticQueues(4), ParallelMode::WorkStealing(4)] {
        let par = discover(
            &rel,
            &DiscoveryConfig {
                mode,
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(
            seq.levels, par.levels,
            "{mode:?}: per-level stats must merge identically"
        );
    }
}
