//! Crash-equivalence harness: SIGKILL a real `ocdd` process mid-run and
//! prove `--resume` reproduces the uninterrupted run's report. This is the
//! process-level counterpart of the in-process sweep in
//! parallel_determinism.rs — nothing is simulated: the child is killed
//! with no chance to flush or unwind, so only the atomic dump protocol
//! (tmp + fsync + rename) keeps the checkpoint directory consistent.
//!
//! Needs the fault-injection feature for `--check-delay-ms` (the knob that
//! stretches the run long enough to die mid-level):
//! `cargo test --features fault-injection --test crash_resume`.

#![cfg(feature = "fault-injection")]

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn ocdd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ocdd"))
}

fn run_ok(cmd: &mut Command, what: &str) -> String {
    let out = cmd.output().unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(
        out.status.success(),
        "{what} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Strip wall-clock and checkpoint-counter noise from a JSON report; the
/// remaining bytes must match exactly between runs.
fn normalize(json: &str) -> String {
    let mut out = json.to_owned();
    for key in ["\"elapsed_ms\":", "\"checkpoint\":"] {
        while let Some(start) = out.find(key) {
            let rest = &out[start + key.len()..];
            let mut depth = 0i32;
            let mut end = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    ',' if depth == 0 => {
                        end = i + 1;
                        break;
                    }
                    _ => {}
                }
            }
            out.replace_range(start..start + key.len() + end, "");
        }
    }
    out
}

/// Dump files in `dir` that finished their atomic rename (no tmp suffix).
fn published_dumps(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn sigkilled_run_resumes_to_the_uninterrupted_report() {
    let work = std::env::temp_dir().join(format!("ocdd-crash-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).expect("create work dir");
    let csv = work.join("table.csv");
    let ckpt = work.join("ckpt");
    let ref_json = work.join("ref.json");
    let res_json = work.join("res.json");

    let table = run_ok(
        ocdd().args(["dataset", "hepatitis", "--rows", "150"]),
        "ocdd dataset",
    );
    std::fs::write(&csv, table).expect("write csv");

    // Uninterrupted reference, default (sequential) mode.
    run_ok(
        ocdd().args([
            "profile",
            csv.to_str().unwrap(),
            "--json",
            "--out",
            ref_json.to_str().unwrap(),
        ]),
        "reference run",
    );

    // Checkpointed run, slowed so it is guaranteed to be mid-search when
    // the kill lands; SIGKILL the child as soon as a dump is published.
    let mut child = ocdd()
        .args([
            "profile",
            csv.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--checkpoint-keep",
            "0",
            "--check-delay-ms",
            "3",
            "--json",
            "--out",
            work.join("crash.json").to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn checkpointed run");
    let deadline = Instant::now() + Duration::from_secs(60);
    while published_dumps(&ckpt).is_empty() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared within 60s"
        );
        if child.try_wait().expect("poll child").is_some() {
            panic!("child finished before any checkpoint was observed");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let it get some way into the level so the kill interrupts real work.
    std::thread::sleep(Duration::from_millis(200));
    child.kill().expect("SIGKILL child"); // SIGKILL on unix: no unwinding
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "child must have died by signal");

    // The directory may hold a half-written staging file from the moment
    // of death, but every published dump parses.
    let dumps = published_dumps(&ckpt);
    assert!(!dumps.is_empty());

    // Resume from the newest dump (directory form) at full speed.
    run_ok(
        ocdd().args([
            "profile",
            csv.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--json",
            "--out",
            res_json.to_str().unwrap(),
        ]),
        "resumed run",
    );

    let reference = std::fs::read_to_string(&ref_json).expect("read reference");
    let resumed = std::fs::read_to_string(&res_json).expect("read resumed");
    assert_eq!(
        normalize(&reference),
        normalize(&resumed),
        "resumed report differs from the uninterrupted one"
    );
    std::fs::remove_dir_all(&work).ok();
}

#[test]
fn dump_dot_renders_a_published_checkpoint() {
    let work = std::env::temp_dir().join(format!("ocdd-crash-dot-{}", std::process::id()));
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).expect("create work dir");
    let csv = work.join("table.csv");
    let ckpt = work.join("ckpt");

    let table = run_ok(
        ocdd().args(["dataset", "hepatitis", "--rows", "80"]),
        "ocdd dataset",
    );
    std::fs::write(&csv, table).expect("write csv");
    run_ok(
        ocdd().args([
            "profile",
            csv.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--json",
        ]),
        "checkpointed run",
    );
    let dot = run_ok(
        ocdd().args([
            "dump-dot",
            ckpt.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ]),
        "dump-dot",
    );
    assert!(dot.starts_with("digraph ocdd_lattice {"), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
    assert!(dot.contains("->"), "lattice must have edges: {dot}");
    std::fs::remove_dir_all(&work).ok();
}
